(* Entries carry an insertion sequence number so that equal keys pop in
   FIFO order: the event engine relies on this for determinism. *)
type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  capacity_hint : int;
}

let create ?(capacity = 16) () =
  { data = [||]; size = 0; next_seq = 0; capacity_hint = max capacity 1 }

let length t = t.size
let is_empty t = t.size = 0

let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* Grow using [fill] (the entry about to be inserted) as the filler, so no
   dummy value is ever fabricated. *)
let ensure_room t fill =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let new_cap = max t.capacity_hint (max 1 (2 * cap)) in
    let data = Array.make new_cap fill in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  ensure_room t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let min_key t = if t.size = 0 then None else Some t.data.(0).key

let peek t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.key, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Drop the dead slot's reference so the GC can reclaim the value. *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end
    else
      (* Popping the last entry: no live entry is left to alias the dead
         slot to, and we cannot fabricate a dummy ['a], so release the
         whole backing array (as [clear] does). [ensure_room] re-allocates
         at [capacity_hint] on the next [add]. *)
      t.data <- [||];
    Some (top.key, top.value)
  end

let pop_exn t =
  match pop t with
  | Some binding -> binding
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  t.size <- 0;
  t.data <- [||]

let iter t f =
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    f e.key e.value
  done
