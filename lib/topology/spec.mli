(** Generated topology: graph plus node placement metadata.

    Every generator in this library produces a {!t}. The paper's weight
    model (§IV.A) ties both link parameters to geometry: cost equals the
    Manhattan distance between the endpoints, and delay is uniform in
    (0, cost]. Keeping the coordinates around lets tests re-check those
    invariants and lets the placement study reason about geography. *)

type t = {
  name : string;  (** e.g. ["waxman-100"], ["arpanet"]. *)
  graph : Netgraph.Graph.t;
  coords : (int * int) array;  (** Grid position of each node. *)
}

val grid_size : int
(** Side of the placement grid, 32767 (paper §IV.A). *)

val manhattan : (int * int) -> (int * int) -> int
(** [|x1-x2| + |y1-y2|]. *)

val max_distance : int
(** Largest possible Manhattan distance on the grid, [2 * 32767]; the
    paper's [L]. *)

val random_coords : Scmp_util.Prng.t -> int -> (int * int) array
(** [random_coords rng n] places [n] nodes uniformly on the grid,
    re-drawing collisions so positions are distinct. *)

val uniform_delay : Scmp_util.Prng.t -> cost:float -> float
(** Draw the paper's link delay: uniform in (0, cost], never zero. *)

val check : t -> unit
(** Validates generator output: connected graph, one coordinate per node.
    @raise Invalid_argument on violation. *)
