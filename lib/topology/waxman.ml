let default_alpha = 0.25
let default_beta = 0.2

let generate ?(alpha = default_alpha) ?(beta = default_beta) ~seed ~n () =
  if n < 2 then invalid_arg "Waxman.generate: need at least two nodes";
  if alpha <= 0.0 || beta <= 0.0 then
    invalid_arg "Waxman.generate: alpha and beta must be positive";
  let rng = Scmp_util.Prng.create seed in
  let coords = Spec.random_coords rng n in
  let b = Netgraph.Graph.Builder.create n in
  let l = float_of_int Spec.max_distance in
  let link u v =
    let cost = float_of_int (Spec.manhattan coords.(u) coords.(v)) in
    let delay = Spec.uniform_delay rng ~cost in
    Netgraph.Graph.Builder.add_link b u v ~delay ~cost
  in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = float_of_int (Spec.manhattan coords.(u) coords.(v)) in
      let p = beta *. exp (-.d /. (alpha *. l)) in
      if Scmp_util.Prng.chance rng p then link u v
    done
  done;
  (* Stitch any disconnected components onto the main one via the
     geometrically shortest missing link, repeating until connected. *)
  let rec connect () =
    match Netgraph.Graph.Builder.components b with
    | [] | [ _ ] -> ()
    | main :: rest ->
      let stray = List.hd rest in
      let best = ref None in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              let d = Spec.manhattan coords.(u) coords.(v) in
              match !best with
              | Some (bd, _, _) when bd <= d -> ()
              | _ -> best := Some (d, u, v))
            stray)
        main;
      (match !best with
      | Some (_, u, v) -> link u v
      | None -> assert false);
      connect ()
  in
  connect ();
  let t = { Spec.name = Printf.sprintf "waxman-%d" n; graph = Netgraph.Graph.Builder.freeze b; coords } in
  Spec.check t;
  t
