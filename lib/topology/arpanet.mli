(** The ARPANET benchmark topology (Fig 8a/9a of the paper).

    A fixed 48-node, 70-link graph following the classic ARPANET maps
    used throughout the multicast-routing literature: a sparse
    continental mesh with mean degree ~2.9 and diameter ~10 hops. Node
    coordinates approximate the historical site geography, scaled onto
    the standard 32767-grid so the same weight model applies as for the
    random generators: cost = Manhattan distance, delay uniform in
    (0, cost] (drawn from [seed]; the structure itself is fixed). *)

val node_count : int
val site_names : string array
(** Historical site label of each node (for pretty traces). *)

val generate : seed:int -> Spec.t
(** Same structure on every call; only the delay draw depends on
    [seed]. *)
