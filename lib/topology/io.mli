(** Plain-text serialization of generated topologies.

    Fixing a topology to a file makes experiments shareable and
    re-runnable without replaying generator seeds. The format is
    line-oriented and versioned:

    {v
    scmp-topology 1
    name waxman-100
    nodes 100
    coord <node> <x> <y>          (one line per node)
    link <u> <v> <delay> <cost>   (one line per link)
    v}

    Blank lines and lines starting with [#] are ignored on load. *)

val to_string : Spec.t -> string

val of_string : string -> (Spec.t, string) result
(** Parses and validates (via {!Spec.check}); all errors — bad syntax,
    bad counts, duplicate links, disconnected graphs — come back as
    [Error]. *)

val save : Spec.t -> path:string -> (unit, string) result

val load : path:string -> (Spec.t, string) result
