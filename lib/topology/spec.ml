type t = {
  name : string;
  graph : Netgraph.Graph.t;
  coords : (int * int) array;
}

let grid_size = 32767

let manhattan (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2)

let max_distance = 2 * grid_size

let random_coords rng n =
  let seen = Hashtbl.create (2 * n) in
  Array.init n (fun _ ->
      let rec draw () =
        let p = (Scmp_util.Prng.int rng (grid_size + 1), Scmp_util.Prng.int rng (grid_size + 1)) in
        if Hashtbl.mem seen p then draw ()
        else begin
          Hashtbl.add seen p ();
          p
        end
      in
      draw ())

let uniform_delay rng ~cost =
  let d = Scmp_util.Prng.float rng cost in
  if d <= 0.0 then cost *. 0.5 else d

let check t =
  let n = Netgraph.Graph.node_count t.graph in
  if Array.length t.coords <> n then
    invalid_arg (t.name ^ ": coords/node count mismatch");
  if not (Netgraph.Graph.is_connected t.graph) then
    invalid_arg (t.name ^ ": generated graph is not connected")
