(** Waxman random topologies (the paper's Fig 7 model, §IV.A).

    Nodes are placed uniformly on the 32767x32767 grid. Each pair (u, v)
    is linked with probability

    {[ P(u, v) = beta * exp (- d(u, v) / (alpha * L)) ]}

    where [d] is the Manhattan distance and [L] the maximum possible
    distance. Link cost is the Manhattan distance; link delay is uniform
    in (0, cost]. The paper's parameters are [alpha = 0.25],
    [beta = 0.2], [n = 100].

    A raw Waxman draw can be disconnected; as is standard practice, the
    generator then augments it by joining each stray component to the
    main one through the shortest available inter-component link, so the
    published experiments (which assume reachability of every member)
    are well-defined on every seed. *)

val default_alpha : float
val default_beta : float

val generate :
  ?alpha:float -> ?beta:float -> seed:int -> n:int -> unit -> Spec.t
(** [generate ~seed ~n ()] draws a connected Waxman topology.
    @raise Invalid_argument if [n < 2] or parameters are non-positive. *)
