(** Flat random topologies with a target mean degree.

    Stand-in for the GT-ITM flat random graphs of the paper's Fig 8/9
    setup ("network size 50, average node degrees 3 and 5"). The
    construction first draws a uniform random spanning tree (so the graph
    is connected by construction), then adds uniformly random extra links
    until the requested mean degree is reached. Link weights follow the
    same geometric model as the Waxman generator: cost = Manhattan
    distance, delay uniform in (0, cost]. *)

val generate : seed:int -> n:int -> avg_degree:float -> Spec.t
(** @raise Invalid_argument if [n < 2], if [avg_degree < 2 (n-1) / n]
    (fewer links than a spanning tree), or if the target exceeds the
    complete graph. *)
