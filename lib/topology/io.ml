let to_string (t : Spec.t) =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = Netgraph.Graph.node_count t.graph in
  pr "scmp-topology 1\n";
  pr "name %s\n" t.name;
  pr "nodes %d\n" n;
  Array.iteri (fun i (x, y) -> pr "coord %d %d %d\n" i x y) t.coords;
  Netgraph.Graph.iter_links t.graph (fun l ->
      pr "link %d %d %.17g %.17g\n" l.Netgraph.Graph.u l.Netgraph.Graph.v
        l.Netgraph.Graph.delay l.Netgraph.Graph.cost);
  Buffer.contents buf

type parse_state = {
  mutable name : string option;
  mutable nodes : int option;
  mutable coords : (int * int * int) list;  (* node, x, y *)
  mutable links : (int * int * float * float) list;
}

let of_string text =
  let state = { name = None; nodes = None; coords = []; links = [] } in
  let error lineno what = Error (Printf.sprintf "line %d: %s" lineno what) in
  let parse_line lineno line =
    let words =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> Ok ()
    | w :: _ when String.length w > 0 && w.[0] = '#' -> Ok ()
    | [ "scmp-topology"; "1" ] -> Ok ()
    | "scmp-topology" :: _ -> error lineno "unsupported format version"
    | [ "name"; n ] ->
      state.name <- Some n;
      Ok ()
    | [ "nodes"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
        state.nodes <- Some n;
        Ok ()
      | Some _ | None -> error lineno "bad node count")
    | [ "coord"; i; x; y ] -> (
      match (int_of_string_opt i, int_of_string_opt x, int_of_string_opt y) with
      | Some i, Some x, Some y ->
        state.coords <- (i, x, y) :: state.coords;
        Ok ()
      | _ -> error lineno "bad coord line")
    | [ "link"; u; v; delay; cost ] -> (
      match
        ( int_of_string_opt u,
          int_of_string_opt v,
          float_of_string_opt delay,
          float_of_string_opt cost )
      with
      | Some u, Some v, Some delay, Some cost ->
        state.links <- (u, v, delay, cost) :: state.links;
        Ok ()
      | _ -> error lineno "bad link line")
    | w :: _ -> error lineno (Printf.sprintf "unknown directive %S" w)
  in
  let lines = String.split_on_char '\n' text in
  let rec feed lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_line lineno line with
      | Ok () -> feed (lineno + 1) rest
      | Error _ as e -> e)
  in
  match feed 1 lines with
  | Error _ as e -> e
  | Ok () -> (
    match (state.name, state.nodes) with
    | None, _ -> Error "missing name"
    | _, None -> Error "missing node count"
    | Some name, Some n -> (
      try
        let coords = Array.make n (0, 0) in
        let seen = Array.make n false in
        List.iter
          (fun (i, x, y) ->
            if i < 0 || i >= n then failwith (Printf.sprintf "coord node %d out of range" i);
            if seen.(i) then failwith (Printf.sprintf "duplicate coord for node %d" i);
            seen.(i) <- true;
            coords.(i) <- (x, y))
          state.coords;
        if not (Array.for_all Fun.id seen) then failwith "missing coord lines";
        let g = Netgraph.Graph.of_links ~n (List.rev state.links) in
        let t = { Spec.name; graph = g; coords } in
        Spec.check t;
        Ok t
      with
      | Failure msg -> Error msg
      | Invalid_argument msg -> Error msg))

let save t ~path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t));
    Ok ()
  with Sys_error e -> Error e

let load ~path =
  try
    let ic = open_in path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string contents
  with Sys_error e -> Error e
