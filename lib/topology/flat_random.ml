let generate ~seed ~n ~avg_degree =
  if n < 2 then invalid_arg "Flat_random.generate: need at least two nodes";
  let target_links =
    int_of_float (Float.round (avg_degree *. float_of_int n /. 2.0))
  in
  if target_links < n - 1 then
    invalid_arg "Flat_random.generate: average degree below spanning tree";
  if target_links > n * (n - 1) / 2 then
    invalid_arg "Flat_random.generate: average degree exceeds complete graph";
  let rng = Scmp_util.Prng.create seed in
  let coords = Spec.random_coords rng n in
  let b = Netgraph.Graph.Builder.create n in
  let link u v =
    let cost = float_of_int (Spec.manhattan coords.(u) coords.(v)) in
    let delay = Spec.uniform_delay rng ~cost in
    Netgraph.Graph.Builder.add_link b u v ~delay ~cost
  in
  (* Random spanning tree: attach each node (in shuffled order) to a
     uniformly chosen, already-attached node. *)
  let order = Array.init n (fun i -> i) in
  Scmp_util.Prng.shuffle rng order;
  for i = 1 to n - 1 do
    let attach_to = order.(Scmp_util.Prng.int rng i) in
    link order.(i) attach_to
  done;
  (* Extra links drawn uniformly over the missing pairs. *)
  let added = ref (n - 1) in
  while !added < target_links do
    let u = Scmp_util.Prng.int rng n in
    let v = Scmp_util.Prng.int rng n in
    if u <> v && not (Netgraph.Graph.Builder.has_link b u v) then begin
      link u v;
      incr added
    end
  done;
  let t =
    {
      Spec.name = Printf.sprintf "random-%d-deg%g" n avg_degree;
      graph = Netgraph.Graph.Builder.freeze b;
      coords;
    }
  in
  Spec.check t;
  t
