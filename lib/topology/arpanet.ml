(* A 48-node rendition of the early-80s ARPANET backbone, the fixed
   benchmark graph of the paper's Figs 8(a)/9(a). Site positions live on
   a 100 x 60 map of the continental US, scaled by 300 onto the standard
   grid. The link list follows the historical shape: dense west-coast
   and north-east clusters, a sparse middle, two southern trunks and two
   northern trunks crossing the continent; mean degree ~2.9, diameter
   ~10 hops. Exact IMP-era adjacency is not recoverable from the paper
   (nor needed): what the experiments rely on is a fixed, realistic,
   sparse continental mesh large enough for 40-member groups. *)

let sites =
  [|
    (* --- far west (0-11) --- *)
    ("SRI", (4, 38));
    ("AMES", (4, 33));
    ("STANFORD", (5, 35));
    ("LBL", (5, 40));
    ("UCB", (6, 39));
    ("SEATTLE", (6, 52));
    ("UCSB", (5, 26));
    ("UCLA", (7, 22));
    ("RAND", (8, 20));
    ("SDC", (9, 24));
    ("USC", (8, 23));
    ("ISI", (7, 19));
    (* --- mountain (12-19) --- *)
    ("UTAH", (18, 36));
    ("BOULDER", (26, 33));
    ("DENVER", (27, 31));
    ("PHOENIX", (15, 17));
    ("ALBUQUERQUE", (24, 20));
    ("SANDIA", (25, 19));
    ("SALT2", (19, 38));
    ("MONTANA", (22, 48));
    (* --- central (20-29) --- *)
    ("TEXAS", (38, 12));
    ("DALLAS", (39, 16));
    ("HOUSTON", (41, 9));
    ("OKLAHOMA", (40, 22));
    ("KANSAS", (42, 28));
    ("STLOUIS", (50, 28));
    ("ILLINOIS", (53, 34));
    ("CHICAGO", (54, 40));
    ("WISCONSIN", (51, 45));
    ("MINNESOTA", (47, 48));
    (* --- south east (30-35) --- *)
    ("TENNESSEE", (60, 22));
    ("GATECH", (64, 17));
    ("ATLANTA", (65, 16));
    ("FLORIDA", (72, 6));
    ("MIAMI", (76, 3));
    ("NORFOLK", (76, 25));
    (* --- mid atlantic (36-41) --- *)
    ("CMU", (68, 35));
    ("PITTSBURGH", (69, 36));
    ("ABERDEEN", (77, 31));
    ("DC", (78, 29));
    ("PENTAGON", (77, 28));
    ("MITRE", (79, 30));
    (* --- north east (42-47) --- *)
    ("PRINCETON", (82, 35));
    ("RUTGERS", (83, 36));
    ("NYU", (84, 39));
    ("YALE", (86, 42));
    ("BBN", (89, 47));
    ("MIT", (90, 48));
  |]

let edges =
  [
    (* west coast cluster *)
    (0, 2); (0, 3); (0, 4); (1, 2); (1, 6); (2, 4);
    (3, 4); (3, 5); (0, 5); (6, 7); (7, 8); (7, 11);
    (8, 9); (8, 10); (9, 10); (10, 11); (6, 9); (1, 12);
    (* mountain *)
    (12, 18); (18, 19); (19, 5); (12, 13); (13, 14); (14, 16);
    (16, 17); (15, 16); (7, 15); (17, 20); (12, 2);
    (* central *)
    (20, 21); (20, 22); (21, 23); (23, 24); (24, 14); (24, 25);
    (25, 26); (26, 27); (27, 28); (28, 29); (29, 19); (25, 30);
    (22, 33); (21, 30); (13, 29);
    (* south east *)
    (30, 31); (31, 32); (32, 33); (33, 34); (32, 35); (34, 35);
    (* mid atlantic *)
    (26, 36); (36, 37); (37, 27); (35, 39); (38, 39); (38, 41);
    (39, 40); (40, 41); (37, 39); (30, 36);
    (* north east *)
    (41, 42); (42, 43); (43, 44); (44, 45); (45, 46); (46, 47);
    (44, 42); (45, 47); (26, 28); (36, 42);
  ]

let node_count = Array.length sites

let site_names = Array.map fst sites

let scale = 300

let generate ~seed =
  let rng = Scmp_util.Prng.create seed in
  let coords = Array.map (fun (_, (x, y)) -> (x * scale, y * scale)) sites in
  let b = Netgraph.Graph.Builder.create node_count in
  List.iter
    (fun (u, v) ->
      let cost = float_of_int (Spec.manhattan coords.(u) coords.(v)) in
      let delay = Spec.uniform_delay rng ~cost in
      Netgraph.Graph.Builder.add_link b u v ~delay ~cost)
    edges;
  let t = { Spec.name = "arpanet"; graph = Netgraph.Graph.Builder.freeze b; coords } in
  Spec.check t;
  t
