(** Unicast next-hop forwarding tables (demand-driven).

    Each domain in the paper runs a link-state unicast routing protocol
    alongside the multicast protocol (§II.D); this module is its
    steady-state result — the converged next-hop tables — computed from
    shortest-delay paths. All hop-by-hop and tunnelled unicast traffic
    in the simulator forwards through these tables.

    The tables are lazy: a source's shortest-path tree is computed on
    the first [path]/[next_hop]/[distance] query against it and
    memoized. Faults invalidate incrementally via {!note_edge_down} /
    {!note_edge_up} — keyed by dense edge id, only entries whose
    answers the fault can change are dropped — so every query observes
    exactly the answers an eager full recompute over the surviving
    subgraph would give (tested differentially in
    test_routing_cache.ml). Dropped SPTs are recycled into an internal
    {!Netgraph.Dijkstra.workspace}, so recomputation under churn
    reuses scratch arrays instead of reallocating. *)

type t

val compute :
  ?edge_ok:(Netgraph.Graph.edge -> bool) ->
  ?all_ok:(unit -> bool) ->
  Netgraph.Graph.t ->
  t
(** An empty cache over [g]; no Dijkstra runs until the first query.
    [edge_ok] (an edge-id liveness predicate, e.g. a fault overlay
    bitset lookup) filters the graph at SPT-build time; it must be
    constant between an invalidation notice and the queries that
    follow it. Ties resolve deterministically (Dijkstra's fixed
    relaxation order). [all_ok], when given, must report whether
    [edge_ok] currently accepts every edge; a [true] answer lets an
    SPT build skip the per-edge filter entirely (an all-accepting
    filtered run is documented byte-identical to an unfiltered one),
    which is the no-fault fast path. *)

val next_hop : t -> src:Netgraph.Graph.node -> dst:Netgraph.Graph.node -> Netgraph.Graph.node option
(** The neighbour to forward to; [None] if [dst] is unreachable.
    [next_hop ~src ~dst:src] is [None]. *)

val distance : t -> src:Netgraph.Graph.node -> dst:Netgraph.Graph.node -> float
(** Converged shortest-delay distance ([infinity] if unreachable). *)

val path : t -> src:Netgraph.Graph.node -> dst:Netgraph.Graph.node -> Netgraph.Path.t option
(** The concrete forwarding path [src; ...; dst]. *)

val spt : t -> src:Netgraph.Graph.node -> Netgraph.Dijkstra.result
(** The shortest-delay tree rooted at [src] (the structure MOSPF
    routers derive their per-source forwarding from); forces the
    source if uncached. The result is only valid until the next
    invalidation notice — dropped SPTs are recycled, so do not retain
    it across faults. *)

val note_edge_down : t -> Netgraph.Graph.edge -> unit
(** The edge just died: drop exactly the cached SPTs whose tree uses
    it (tracked per edge id at build time, so untouched sources pay
    nothing). Entries kept are provably identical to a recompute. *)

val note_edge_up : t -> Netgraph.Graph.edge -> unit
(** The edge just revived: drop the cached SPTs the edge could now
    shorten (or tie — ties can flip predecessor choices), judged from
    the cached distances of its endpoints. *)

val invalidate_all : t -> unit
(** Drop every cached entry (full reconvergence). *)

val cached : t -> int
(** Number of sources currently memoized. *)

val computed : t -> int
(** Lifetime count of SPT builds ([routes/spt_computed]). *)

val invalidated : t -> int
(** Lifetime count of cached SPTs dropped ([routes/invalidated]). *)
