(** Unicast next-hop forwarding tables.

    Each domain in the paper runs a link-state unicast routing protocol
    alongside the multicast protocol (§II.D); this module is its
    steady-state result — the converged next-hop tables — computed from
    shortest-delay paths. All hop-by-hop and tunnelled unicast traffic
    in the simulator forwards through these tables. *)

type t

val compute : Netgraph.Graph.t -> t
(** One Dijkstra (delay metric) per node. Ties resolve
    deterministically (Dijkstra's fixed relaxation order). *)

val next_hop : t -> src:Netgraph.Graph.node -> dst:Netgraph.Graph.node -> Netgraph.Graph.node option
(** The neighbour to forward to; [None] if [dst] is unreachable.
    [next_hop ~src ~dst:src] is [None]. *)

val distance : t -> src:Netgraph.Graph.node -> dst:Netgraph.Graph.node -> float
(** Converged shortest-delay distance ([infinity] if unreachable). *)

val path : t -> src:Netgraph.Graph.node -> dst:Netgraph.Graph.node -> Netgraph.Path.t option
(** The concrete forwarding path [src; ...; dst]. *)

val spt : t -> src:Netgraph.Graph.node -> Netgraph.Dijkstra.result
(** The shortest-delay tree rooted at [src] (the structure MOSPF
    routers derive their per-source forwarding from). *)
