module Q = Scmp_util.Calendar_queue

(* The event representation is a variant, not a universal closure: the
   hot event kinds of a packet simulation carry their state in unboxed
   int fields and dispatch through a handler registered once, so the
   per-event cost is one small record in the calendar queue — no thunk,
   no captured environment.

   - [Closure] is the general fallback: any [unit -> unit], the
     historical event shape.
   - [Tick] is a periodic task ({!every}): one record allocated at
     registration and re-enqueued after each firing, so N firings keep
     O(1) live event records.
   - [Fast] carries five immediate ints and a {!dispatch} — a handler
     closure registered once per event family (e.g. Netsim's single-
     edge delivery), not once per event. What the ints mean is the
     family's private contract. *)

type dispatch = { run : int -> int -> int -> int -> int -> unit }

type event =
  | Closure of { fn : unit -> unit; bg : bool }
  | Tick of tick
  | Fast of {
      d : dispatch;
      a : int;
      b : int;
      c : int;
      x : int;
      y : int;
      fbg : bool;
    }

and tick = {
  tfn : unit -> unit;
  interval : float;
  tuntil : float;  (* [infinity] when unbounded *)
  tbg : bool;
}

type t = {
  mutable clock : float;
  queue : event Q.t;
  mutable foreground : int;
  mutable executed : int;
  mutable heap_hwm : int;
}

let create () =
  {
    clock = 0.0;
    queue = Q.create ();
    foreground = 0;
    executed = 0;
    heap_hwm = 0;
  }

let now t = t.clock

let is_background = function
  | Closure { bg; _ } -> bg
  | Tick { tbg; _ } -> tbg
  | Fast { fbg; _ } -> fbg

let push t ~time ev ~background =
  Q.add t.queue ~key:time ev;
  let len = Q.length t.queue in
  if len > t.heap_hwm then t.heap_hwm <- len;
  if not background then t.foreground <- t.foreground + 1

(* [caller] names the public entry point so a "time in the past" error
   points at the call site that actually failed, not at schedule_at. *)
let enqueue t ~caller ~time ~background thunk =
  if time < t.clock then invalid_arg (caller ^ ": time in the past");
  push t ~time (Closure { fn = thunk; bg = background }) ~background

let schedule_at t ?(background = false) ~time thunk =
  enqueue t ~caller:"Engine.schedule_at" ~time ~background thunk

let schedule t ?(background = false) ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  enqueue t ~caller:"Engine.schedule" ~time:(t.clock +. delay) ~background thunk

let dispatch run = { run }

let schedule_fast t ?(background = false) ~time d a b c x y =
  if time < t.clock then invalid_arg "Engine.schedule_fast: time in the past";
  push t ~time (Fast { d; a; b; c; x; y; fbg = background }) ~background

let every t ~interval ?until ?(background = false) thunk =
  if interval <= 0.0 then invalid_arg "Engine.every: non-positive interval";
  let tuntil = match until with Some stop -> stop | None -> infinity in
  (* One event record for the task's whole lifetime: each firing pushes
     this same record back (see [exec]). The [until] window also gates
     the *first* firing: a periodic task whose first tick would land
     past the horizon never fires at all. *)
  let first = t.clock +. interval in
  if first <= tuntil then
    push t ~time:first (Tick { tfn = thunk; interval; tuntil; tbg = background })
      ~background

let pending t = Q.length t.queue
let pending_foreground t = t.foreground
let events_executed t = t.executed
let heap_high_water t = t.heap_hwm

let observe t m =
  Obs.Metrics.set_counter
    (Obs.Metrics.counter m "engine/events_executed")
    t.executed;
  Obs.Metrics.set_counter
    (Obs.Metrics.counter m "engine/heap_high_water")
    t.heap_hwm

(* Execute a popped event. The clock is already set and the accounting
   done. A [Tick] re-enqueues itself *after* its body ran, preserving
   the old recursive-closure FIFO order: events the body scheduled for
   the same next instant were inserted first and pop first. *)
let exec t ev =
  match ev with
  | Closure { fn; _ } -> fn ()
  | Fast { d; a; b; c; x; y; _ } -> d.run a b c x y
  | Tick k ->
    k.tfn ();
    let next = t.clock +. k.interval in
    if next <= k.tuntil then push t ~time:next ev ~background:k.tbg

let run_one t ik =
  let ev = Q.pop_min t.queue in
  let time = Q.key_of_image ik in
  if time <> t.clock then t.clock <- time;
  if not (is_background ev) then t.foreground <- t.foreground - 1;
  t.executed <- t.executed + 1;
  exec t ev

let step t =
  if Q.is_empty t.queue then false
  else begin
    run_one t (Q.min_image t.queue);
    true
  end

(* Without [until]: run to quiescence — until no foreground event
   remains (background-only residue, like periodic IGMP queries, does
   not keep the simulation alive). With [until]: run every event, of
   either kind, scheduled within the window. Either loop is a single
   locate-and-pop per event — the calendar queue memoizes the located
   minimum between [min_image] and [pop_min], so there is no
   peek-then-pop double search. *)
let run ?until t =
  (match until with
  | None ->
    (* foreground > 0 implies the queue is non-empty *)
    while t.foreground > 0 do
      run_one t (Q.min_image t.queue)
    done
  | Some stop ->
    let istop = Q.image stop in
    (* an empty queue reports max_int, above every real key; locate
       the minimum once per iteration and hand it to the pop *)
    let ik = ref (Q.min_image t.queue) in
    while !ik <= istop do
      run_one t !ik;
      ik := Q.min_image t.queue
    done);
  match until with
  | Some stop when stop > t.clock -> t.clock <- stop
  | _ -> ()
