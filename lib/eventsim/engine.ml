type event = { thunk : unit -> unit; background : bool }

type t = {
  mutable clock : float;
  queue : event Scmp_util.Heap.t;
  mutable foreground : int;
  mutable executed : int;
  mutable heap_hwm : int;
}

let create () =
  {
    clock = 0.0;
    queue = Scmp_util.Heap.create ~capacity:256 ();
    foreground = 0;
    executed = 0;
    heap_hwm = 0;
  }

let now t = t.clock

(* [caller] names the public entry point so a "time in the past" error
   points at the call site that actually failed, not at schedule_at. *)
let enqueue t ~caller ~time ~background thunk =
  if time < t.clock then invalid_arg (caller ^ ": time in the past");
  Scmp_util.Heap.add t.queue ~key:time { thunk; background };
  let len = Scmp_util.Heap.length t.queue in
  if len > t.heap_hwm then t.heap_hwm <- len;
  if not background then t.foreground <- t.foreground + 1

let schedule_at t ?(background = false) ~time thunk =
  enqueue t ~caller:"Engine.schedule_at" ~time ~background thunk

let schedule t ?(background = false) ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  enqueue t ~caller:"Engine.schedule" ~time:(t.clock +. delay) ~background thunk

let every t ~interval ?until ?(background = false) thunk =
  if interval <= 0.0 then invalid_arg "Engine.every: non-positive interval";
  let within next =
    match until with Some stop -> next <= stop | None -> true
  in
  let rec tick () =
    thunk ();
    let next = t.clock +. interval in
    if within next then enqueue t ~caller:"Engine.every" ~time:next ~background tick
  in
  (* The [until] window also gates the *first* firing: a periodic task
     whose first tick would land past the horizon never fires at all. *)
  let first = t.clock +. interval in
  if within first then enqueue t ~caller:"Engine.every" ~time:first ~background tick

let pending t = Scmp_util.Heap.length t.queue
let pending_foreground t = t.foreground
let events_executed t = t.executed
let heap_high_water t = t.heap_hwm

let observe t m =
  Obs.Metrics.set_counter
    (Obs.Metrics.counter m "engine/events_executed")
    t.executed;
  Obs.Metrics.set_counter
    (Obs.Metrics.counter m "engine/heap_high_water")
    t.heap_hwm

let step t =
  match Scmp_util.Heap.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.clock <- time;
    if not ev.background then t.foreground <- t.foreground - 1;
    t.executed <- t.executed + 1;
    ev.thunk ();
    true

(* Without [until]: run to quiescence — until no foreground event
   remains (background-only residue, like periodic IGMP queries, does
   not keep the simulation alive). With [until]: run every event, of
   either kind, scheduled within the window. *)
let run ?until t =
  let continue () =
    match Scmp_util.Heap.min_key t.queue with
    | None -> false
    | Some next ->
      (match until with
      | Some stop -> next <= stop
      | None -> t.foreground > 0)
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some stop when stop > t.clock -> t.clock <- stop
  | _ -> ()
