(** Packet trace capture — the NS-2 trace-file analogue.

    Attach a trace to a network simulation and every link crossing is
    recorded as one line:

    {v
    <time> <src> <dst> <C|D> <description>
    v}

    with [C]/[D] the control/data class and the description produced by
    the caller (e.g. [Protocols.Message.describe]). A packet kill is
    recorded too, with class [X] and the drop reason before the
    description:

    {v
    <time> <src> <dst> X <loss|no_route|link_down|node_down> <description>
    v}

    Traces make simulations debuggable the way NS-2 runs were:
    replayable, grep-able records of exactly what crossed which link
    when — and of what died where, and why. *)

type t

val attach : ?limit:int -> 'm Netsim.t -> describe:('m -> string) -> t
(** Starts recording every subsequent crossing (registers an
    {!Netsim.on_transmit} hook; earlier traffic is not recorded).

    [limit] bounds memory on long runs: the trace becomes a ring buffer
    keeping only the newest [limit] lines, counting evictions in
    {!dropped}. Unbounded without it.
    @raise Invalid_argument if [limit < 1]. *)

val line_count : t -> int
(** Lines currently retained (≤ [limit] when one was given). *)

val dropped : t -> int
(** Oldest lines evicted by the [limit] ring buffer; 0 when
    unbounded. *)

val drop_events : t -> int
(** Packet-kill ([X]) lines recorded so far (counted even when the ring
    buffer later evicts the line). *)

val lines : t -> string list
(** Recorded lines, oldest first. *)

val to_string : t -> string
(** All lines, newline-terminated. *)

val save : t -> path:string -> (unit, string) result

val clear : t -> unit
(** Forget everything recorded so far, including the dropped count
    (the hook stays active). *)
