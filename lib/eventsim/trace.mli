(** Packet trace capture — the NS-2 trace-file analogue.

    Attach a trace to a network simulation and every link crossing is
    recorded as one line:

    {v
    <time> <src> <dst> <C|D> <description>
    v}

    with [C]/[D] the control/data class and the description produced by
    the caller (e.g. [Protocols.Message.describe]). Traces make
    simulations debuggable the way NS-2 runs were: replayable,
    grep-able records of exactly what crossed which link when. *)

type t

val attach : 'm Netsim.t -> describe:('m -> string) -> t
(** Starts recording every subsequent crossing (registers an
    {!Netsim.on_transmit} hook; earlier traffic is not recorded). *)

val line_count : t -> int

val lines : t -> string list
(** Recorded lines, oldest first. *)

val to_string : t -> string
(** All lines, newline-terminated. *)

val save : t -> path:string -> (unit, string) result

val clear : t -> unit
(** Forget everything recorded so far (the hook stays active). *)
