type job = { arrived : float; service_time : float; run : unit -> unit }

type t = {
  engine : Engine.t;
  k : int;
  waiting : job Queue.t;
  mutable busy : int;
  mutable completed : int;
  mutable total_wait : float;
  mutable max_queue : int;
  mutable on_wait : (float -> unit) option;
}

let create engine ~servers =
  if servers < 1 then invalid_arg "Server.create: need at least one server";
  {
    engine;
    k = servers;
    waiting = Queue.create ();
    busy = 0;
    completed = 0;
    total_wait = 0.0;
    max_queue = 0;
    on_wait = None;
  }

let servers t = t.k
let busy t = t.busy
let queue_length t = Queue.length t.waiting
let completed t = t.completed
let total_queueing_delay t = t.total_wait
let max_queue_length t = t.max_queue

let on_wait t f = t.on_wait <- Some f

let rec start t job =
  t.busy <- t.busy + 1;
  let wait = Engine.now t.engine -. job.arrived in
  t.total_wait <- t.total_wait +. wait;
  (match t.on_wait with Some f -> f wait | None -> ());
  Engine.schedule t.engine ~delay:job.service_time (fun () ->
      t.busy <- t.busy - 1;
      t.completed <- t.completed + 1;
      job.run ();
      (* the freed server picks up the next waiting job, if any *)
      if (not (Queue.is_empty t.waiting)) && t.busy < t.k then
        start t (Queue.pop t.waiting))

let submit t ~service_time run =
  if service_time < 0.0 then invalid_arg "Server.submit: negative service time";
  let job = { arrived = Engine.now t.engine; service_time; run } in
  if t.busy < t.k then start t job
  else begin
    Queue.push job t.waiting;
    if Queue.length t.waiting > t.max_queue then t.max_queue <- Queue.length t.waiting
  end

let instrument t m ~prefix =
  let hist = Obs.Metrics.histogram m (prefix ^ "/wait_s") in
  on_wait t (fun w -> Obs.Metrics.observe hist w)

let observe t m ~prefix =
  let set_c name v =
    Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ name)) v
  in
  set_c "/completed" t.completed;
  set_c "/max_queue" t.max_queue;
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ "/total_wait_s")) t.total_wait

let sample_queue_depth t series ~interval ~until =
  Engine.every t.engine ~interval ~until ~background:true (fun () ->
      Obs.Series.sample series ~t:(Engine.now t.engine)
        (float_of_int (Queue.length t.waiting)))
