module G = Netgraph.Graph
module D = Netgraph.Dijkstra

(* Demand-driven per-source SPT cache with incremental invalidation.

   A source's shortest-path tree is computed on first query and
   memoized. On a fault, instead of recomputing every source, the cache
   drops only the entries the fault can actually change:

   - [note_edge_down e]: a cached SPT whose *tree* does not use the
     edge is unaffected. Dijkstra relaxes with strict [<], so any
     relaxation through [e] that did not win left no trace, and any
     equal-distance tie the edge could have won puts the edge *in* the
     tree — so "tree uses the edge" ([pred_edge] of either endpoint is
     [e], O(1)) is exact: every surviving entry equals the eager
     recompute.

   - [note_edge_up e], weight w: no cached tree uses a dead edge, so
     the test flips to distances. The revived edge can change source
     s's answers only if it could relax — or tie — a label:
     [da + w <= db || db + w <= da] ([<=], not [<], because an equal
     tie could flip a predecessor choice). When both endpoints are
     unreachable from s the edge connects two nodes of a foreign
     component and cannot help; keep the entry.

   Node faults reduce to their incident edges (see Netsim). The
   edge→sources map is a plain array indexed by dense edge id —
   per tree edge, which cached sources used it when built; an edge
   death touches only candidate dependents. Dropped SPTs are recycled
   into a Dijkstra workspace, so steady-state recomputation under
   churn reuses the same scratch arrays instead of reallocating. *)

type t = {
  g : G.t;
  edge_ok : (G.edge -> bool) option;
  (* [true] when [edge_ok] currently accepts every edge (no live
     fault). An all-accepting filter is equivalent to no filter —
     Dijkstra documents the filtered run as identical to the
     unfiltered one — so a clean overlay takes the fused
     [drain_csr] fast path instead of paying a closure call per
     relaxation. *)
  all_ok : (unit -> bool) option;
  ws : D.workspace;
  results : D.result option array;
  (* edge id -> sources whose cached SPT used the edge when built.
     Entries may be stale (source since dropped or rebuilt without the
     edge); [note_edge_down] re-checks before dropping. *)
  edge_users : int list array;
  (* '\001' once a source has registered tree edges at least once: a
     first build (the no-fault steady state) cannot already appear in
     any [edge_users] list, so registration skips the membership scan
     entirely; only a rebuild after invalidation pays it. *)
  registered : Bytes.t;
  mutable computed : int;
  mutable invalidated : int;
}

let compute ?edge_ok ?all_ok g =
  {
    g;
    edge_ok;
    all_ok;
    ws = D.create_workspace ();
    results = Array.make (G.node_count g) None;
    edge_users = Array.make (G.edge_count g) [];
    registered = Bytes.make (G.node_count g) '\000';
    computed = 0;
    invalidated = 0;
  }

(* Int-specialized membership: [List.mem] would go through the
   polymorphic comparator for every element — measurably hot, since
   this runs over every tree edge of every SPT build. *)
let rec mem_int (x : int) = function
  | [] -> false
  | y :: rest -> y = x || mem_int x rest

let register_tree_edges t s r =
  let fresh = Bytes.get t.registered s = '\000' in
  Bytes.set t.registered s '\001';
  for y = 0 to G.node_count t.g - 1 do
    let e = D.parent_edge_ix r y in
    if e >= 0 && (fresh || not (mem_int s t.edge_users.(e))) then
      t.edge_users.(e) <- s :: t.edge_users.(e)
  done

let force t s =
  match t.results.(s) with
  | Some r -> r
  | None ->
    let edge_ok =
      match t.all_ok with Some f when f () -> None | _ -> t.edge_ok
    in
    let r = D.run ~ws:t.ws ?edge_ok t.g ~metric:D.Delay ~source:s in
    t.results.(s) <- Some r;
    t.computed <- t.computed + 1;
    register_tree_edges t s r;
    r

let path t ~src ~dst = D.path (force t src) dst

let next_hop t ~src ~dst =
  if src = dst then None
  else
    match path t ~src ~dst with
    | Some (_ :: hop :: _) -> Some hop
    | Some _ | None -> None

let distance t ~src ~dst = D.dist (force t src) dst
let spt t ~src = force t src

let drop t s =
  match t.results.(s) with
  | None -> ()
  | Some r ->
    t.results.(s) <- None;
    t.invalidated <- t.invalidated + 1;
    D.recycle t.ws r

let uses_edge t r e =
  D.parent_edge r (G.edge_u t.g e) = Some e
  || D.parent_edge r (G.edge_v t.g e) = Some e

let note_edge_down t e =
  match t.edge_users.(e) with
  | [] -> ()
  | users ->
    t.edge_users.(e) <- [];
    List.iter
      (fun s ->
        match t.results.(s) with
        | Some r when uses_edge t r e -> drop t s
        | Some _ | None -> ())
      users

let note_edge_up t e =
  let w = G.edge_delay t.g e in
  let a = G.edge_u t.g e and b = G.edge_v t.g e in
  Array.iteri
    (fun s entry ->
      match entry with
      | None -> ()
      | Some r ->
        let da = D.dist r a and db = D.dist r b in
        if not (da = infinity && db = infinity)
           && (da +. w <= db || db +. w <= da)
        then drop t s)
    t.results

let invalidate_all t =
  Array.iteri (fun s _ -> drop t s) t.results;
  Array.fill t.edge_users 0 (Array.length t.edge_users) []

let cached t =
  Array.fold_left
    (fun acc entry -> match entry with None -> acc | Some _ -> acc + 1)
    0 t.results

let computed t = t.computed
let invalidated t = t.invalidated
