module G = Netgraph.Graph
module D = Netgraph.Dijkstra

(* Demand-driven per-source SPT cache with incremental invalidation.

   A source's shortest-path tree is computed on first query and
   memoized. On a fault, instead of recomputing every source, the cache
   drops only the entries the fault can actually change:

   - [note_edge_down (a,b)]: a cached SPT whose *tree* does not use the
     edge is unaffected. Dijkstra relaxes with strict [<], so any
     relaxation through (a,b) that did not win left no trace, and any
     equal-distance tie the edge could have won puts the edge *in* the
     tree — so "tree uses the edge" (pred a = b or pred b = a, O(1))
     is exact: every surviving entry equals the eager recompute.

   - [note_edge_up (a,b), weight w]: no cached tree uses a dead edge,
     so the test flips to distances. The revived edge can change source
     s's answers only if it could relax — or tie — a label:
     [da + w <= db || db + w <= da] ([<=], not [<], because an equal
     tie could flip a predecessor choice). When both endpoints are
     unreachable from s the edge connects two nodes of a foreign
     component and cannot help; keep the entry.

   Node faults reduce to their incident edges (see Netsim). The
   edge→sources map records, per tree edge, which cached sources use
   it, so an edge death touches only candidate dependents. *)

type t = {
  g : G.t;
  edge_ok : (G.node -> G.node -> bool) option;
  results : D.result option array;
  (* normalized (min,max) tree edge -> sources whose cached SPT used it
     when built. Entries may be stale (source since dropped or rebuilt
     without the edge); [note_edge_down] re-checks before dropping. *)
  edge_users : (G.node * G.node, int list ref) Hashtbl.t;
  mutable computed : int;
  mutable invalidated : int;
}

let norm a b = (min a b, max a b)

let compute ?edge_ok g =
  {
    g;
    edge_ok;
    results = Array.make (G.node_count g) None;
    edge_users = Hashtbl.create 64;
    computed = 0;
    invalidated = 0;
  }

let register_tree_edges t s r =
  for y = 0 to G.node_count t.g - 1 do
    match D.parent r y with
    | None -> ()
    | Some p -> (
      let key = norm p y in
      match Hashtbl.find_opt t.edge_users key with
      | Some users -> if not (List.mem s !users) then users := s :: !users
      | None -> Hashtbl.add t.edge_users key (ref [ s ]))
  done

let force t s =
  match t.results.(s) with
  | Some r -> r
  | None ->
    let r = D.run ?edge_ok:t.edge_ok t.g ~metric:D.Delay ~source:s in
    t.results.(s) <- Some r;
    t.computed <- t.computed + 1;
    register_tree_edges t s r;
    r

let path t ~src ~dst = D.path (force t src) dst

let next_hop t ~src ~dst =
  if src = dst then None
  else
    match path t ~src ~dst with
    | Some (_ :: hop :: _) -> Some hop
    | Some _ | None -> None

let distance t ~src ~dst = D.dist (force t src) dst
let spt t ~src = force t src

let drop t s =
  match t.results.(s) with
  | None -> ()
  | Some _ ->
    t.results.(s) <- None;
    t.invalidated <- t.invalidated + 1

let uses_edge r a b = D.parent r a = Some b || D.parent r b = Some a

let note_edge_down t (a, b) =
  match Hashtbl.find_opt t.edge_users (norm a b) with
  | None -> ()
  | Some users ->
    Hashtbl.remove t.edge_users (norm a b);
    List.iter
      (fun s ->
        match t.results.(s) with
        | Some r when uses_edge r a b -> drop t s
        | Some _ | None -> ())
      !users

let note_edge_up t (a, b) =
  let w = G.link_delay t.g a b in
  Array.iteri
    (fun s entry ->
      match entry with
      | None -> ()
      | Some r ->
        let da = D.dist r a and db = D.dist r b in
        if not (da = infinity && db = infinity)
           && (da +. w <= db || db +. w <= da)
        then drop t s)
    t.results

let invalidate_all t =
  Array.iteri (fun s _ -> drop t s) t.results;
  Hashtbl.reset t.edge_users

let cached t =
  Array.fold_left
    (fun acc entry -> match entry with None -> acc | Some _ -> acc + 1)
    0 t.results

let computed t = t.computed
let invalidated t = t.invalidated
