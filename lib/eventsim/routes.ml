type t = { results : Netgraph.Dijkstra.result array }

let compute g =
  let n = Netgraph.Graph.node_count g in
  {
    results =
      Array.init n (fun s -> Netgraph.Dijkstra.run g ~metric:Netgraph.Dijkstra.Delay ~source:s);
  }

let path t ~src ~dst = Netgraph.Dijkstra.path t.results.(src) dst

let next_hop t ~src ~dst =
  if src = dst then None
  else
    match path t ~src ~dst with
    | Some (_ :: hop :: _) -> Some hop
    | Some _ | None -> None

let distance t ~src ~dst = Netgraph.Dijkstra.dist t.results.(src) dst

let spt t ~src = t.results.(src)
