type t = {
  entries : string Queue.t;  (* oldest first *)
  limit : int option;
  mutable dropped : int;
}

let attach ?limit net ~describe =
  (match limit with
  | Some l when l < 1 -> invalid_arg "Trace.attach: limit must be positive"
  | _ -> ());
  let t = { entries = Queue.create (); limit; dropped = 0 } in
  let engine = Netsim.engine net in
  Netsim.on_transmit net (fun ~src ~dst msg ->
      let cls =
        match Netsim.classify_of net msg with `Control -> 'C' | `Data -> 'D'
      in
      let line =
        Printf.sprintf "%.6f %d %d %c %s" (Engine.now engine) src dst cls
          (describe msg)
      in
      Queue.push line t.entries;
      match t.limit with
      | Some l when Queue.length t.entries > l ->
        ignore (Queue.pop t.entries);
        t.dropped <- t.dropped + 1
      | _ -> ());
  t

let line_count t = Queue.length t.entries
let dropped t = t.dropped
let lines t = List.rev (Queue.fold (fun acc l -> l :: acc) [] t.entries)

let to_string t =
  let b = Buffer.create 1024 in
  Queue.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    t.entries;
  Buffer.contents b

let save t ~path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t));
    Ok ()
  with Sys_error e -> Error e

let clear t =
  Queue.clear t.entries;
  t.dropped <- 0
