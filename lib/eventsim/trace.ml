type t = {
  entries : string Queue.t;  (* oldest first *)
  limit : int option;
  mutable dropped : int;
  mutable drop_lines : int;
}

let push t line =
  Queue.push line t.entries;
  match t.limit with
  | Some l when Queue.length t.entries > l ->
    ignore (Queue.pop t.entries);
    t.dropped <- t.dropped + 1
  | _ -> ()

let attach ?limit net ~describe =
  (match limit with
  | Some l when l < 1 -> invalid_arg "Trace.attach: limit must be positive"
  | _ -> ());
  let t = { entries = Queue.create (); limit; dropped = 0; drop_lines = 0 } in
  let engine = Netsim.engine net in
  Netsim.on_transmit net (fun ~src ~dst msg ->
      let cls =
        match Netsim.classify_of net msg with `Control -> 'C' | `Data -> 'D'
      in
      push t
        (Printf.sprintf "%.6f %d %d %c %s" (Engine.now engine) src dst cls
           (describe msg)));
  Netsim.on_drop net (fun ~reason ~src ~dst msg ->
      t.drop_lines <- t.drop_lines + 1;
      push t
        (Printf.sprintf "%.6f %d %d X %s %s" (Engine.now engine) src dst
           (Netsim.drop_reason_label reason)
           (describe msg)));
  t

let line_count t = Queue.length t.entries
let dropped t = t.dropped
let drop_events t = t.drop_lines
let lines t = List.rev (Queue.fold (fun acc l -> l :: acc) [] t.entries)

let to_string t =
  let b = Buffer.create 1024 in
  Queue.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    t.entries;
  Buffer.contents b

let save t ~path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t));
    Ok ()
  with Sys_error e -> Error e

let clear t =
  Queue.clear t.entries;
  t.dropped <- 0;
  t.drop_lines <- 0
