type t = { mutable entries : string list; (* newest first *) mutable count : int }

let attach net ~describe =
  let t = { entries = []; count = 0 } in
  let engine = Netsim.engine net in
  Netsim.on_transmit net (fun ~src ~dst msg ->
      let cls =
        match Netsim.classify_of net msg with `Control -> 'C' | `Data -> 'D'
      in
      let line =
        Printf.sprintf "%.6f %d %d %c %s" (Engine.now engine) src dst cls
          (describe msg)
      in
      t.entries <- line :: t.entries;
      t.count <- t.count + 1);
  t

let line_count t = t.count
let lines t = List.rev t.entries

let to_string t =
  String.concat "" (List.rev_map (fun l -> l ^ "\n") t.entries)

let save t ~path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t));
    Ok ()
  with Sys_error e -> Error e

let clear t =
  t.entries <- [];
  t.count <- 0
