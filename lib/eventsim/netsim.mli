(** Packet-level network simulation over the event engine.

    Nodes exchange messages of an arbitrary type ['m]. Two primitives
    are offered:

    - {!transmit}: one hop across an existing link, arriving after the
      link delay and charging the link cost to the message's class —
      this is how multicast protocols move packets (they own their
      forwarding logic);
    - {!unicast}: plain IP forwarding below the multicast layer; the
      message travels hop-by-hop along converged unicast routes,
      charging every traversed link, and only the destination's handler
      sees it (intermediate routers forward transparently). Used for
      JOIN/LEAVE requests to the m-router and for encapsulated data
      from off-tree sources.

    Overheads follow the paper's metric (§IV.B): a packet crossing a
    link contributes that link's cost, accumulated separately for
    [`Data] and [`Control] packets. *)

type node = Netgraph.Graph.node

type pkt_class = [ `Data | `Control ]

type drop_reason = Loss | No_route | Link_down | Node_down
(** Why a packet died: Bernoulli loss injection, no unicast route to
    the destination, a dead link on its path, a dead endpoint. *)

val drop_reason_label : drop_reason -> string
(** Stable lower-case label ([loss], [no_route], [link_down],
    [node_down]) used in traces and metric names. *)

type 'm t

val create :
  ?sizeof:('m -> int) -> Engine.t -> Netgraph.Graph.t -> classify:('m -> pkt_class) -> 'm t
(** Builds a demand-driven unicast routing cache internally (one
    Dijkstra per *queried* source, memoized; see {!Routes}). [sizeof]
    gives a message's wire size in bytes; with it, the simulation also
    keeps per-class byte counters ({!data_bytes}, {!control_bytes}) —
    without it they stay at 0. *)

val engine : 'm t -> Engine.t

val graph : 'm t -> Netgraph.Graph.t
(** The immortal base topology; failures never mutate it (see
    {!live_graph}). *)

val routes : 'm t -> Routes.t
(** The converged unicast routes, always answering over the current
    live subgraph. The handle itself is stable for the simulation's
    lifetime; topology changes invalidate affected cached entries in
    place, so answers obtained *before* a change may be stale — re-query
    after a change (or watch {!routes_epoch}). *)

val routes_epoch : 'm t -> int
(** Incremented on every route reconvergence (once per effective
    [fail_*]/[restore_*] call); 0 on a fresh simulation. Agents can
    compare epochs to detect reconvergence. *)

val classify_of : 'm t -> 'm -> pkt_class
(** Apply the simulation's classifier to a message (used by tracing). *)

val set_handler : 'm t -> node -> ('m t -> from:node -> 'm -> unit) -> unit
(** Install the protocol agent of one node. [from] is the neighbour the
    packet arrived from for {!transmit}, or the original source for
    {!unicast}. Without a handler, arriving packets are dropped. *)

val transmit : 'm t -> ?background:bool -> src:node -> dst:node -> 'm -> unit
(** One-hop send across the link [src]-[dst]. A [background] packet is
    charged and delivered like any other but its delivery event does
    not keep {!Engine.run} alive (periodic keep-alive traffic).
    @raise Invalid_argument if the nodes are not adjacent. *)

val unicast : 'm t -> ?background:bool -> src:node -> dst:node -> 'm -> unit
(** Routed multi-hop send; delivery after the total path delay, cost
    charged per traversed link. [src = dst] delivers locally after zero
    delay. A packet with no route (partitioned network) is dropped and
    counted ({!dropped}, reason {!No_route}). *)

val loopback : 'm t -> node -> 'm -> unit
(** Deliver to the node's own handler at the current instant + 0 (an
    intra-router hand-off; no link crossed, nothing charged). *)

(** {2 Accounting} *)

val data_overhead : 'm t -> float
(** Sum of link costs crossed by [`Data] packets so far. *)

val control_overhead : 'm t -> float
(** Same for [`Control] packets (the paper's "protocol overhead"). *)

val data_transmissions : 'm t -> int
(** Number of link crossings by data packets. *)

val control_transmissions : 'm t -> int

val data_bytes : 'm t -> int
(** Bytes crossed by data packets ([sizeof] summed per crossing);
    0 unless {!create} was given [sizeof]. *)

val control_bytes : 'm t -> int

val link_crossings : 'm t -> (node * node) -> int
(** Crossings of one undirected link (both directions pooled). *)

val per_link_crossings : 'm t -> ((node * node) * int) list
(** Every link that carried traffic with its crossing count, ordered by
    link — per-link utilization for reports. *)

val observe : 'm t -> Obs.Metrics.t -> unit
(** Publish the accounting into a registry: [net/data/transmissions],
    [net/control/transmissions], [net/data/bytes], [net/control/bytes],
    [net/data/cost], [net/control/cost], [net/dropped] plus its
    per-reason breakdown ([net/dropped/loss], [net/dropped/no_route],
    [net/dropped/link_down], [net/dropped/node_down]),
    [net/routes_epoch], the routing-cache economics
    ([routes/spt_computed] — lifetime SPT builds, [routes/invalidated]
    — cached SPTs dropped by faults), [net/links_used],
    [net/max_link_crossings]. Idempotent. *)

val on_transmit : 'm t -> (src:node -> dst:node -> 'm -> unit) -> unit
(** Register a trace hook called on every link crossing (after
    accounting, before delivery is scheduled). Hooks stack. *)

(** {2 Node processing capacity} *)

val set_node_processing : 'm t -> node -> Server.t -> service_time:float -> unit
(** Route every packet delivered to this node through a processing
    station first: the protocol handler runs only after the packet has
    queued for and held a processor for [service_time]. Models a
    router's forwarding engine — in this reproduction, the §I traffic
    concentration at shared-tree cores versus the m-router's parallel
    fabric. @raise Invalid_argument on negative service time. *)

val clear_node_processing : 'm t -> node -> unit

(** {2 Failure injection} *)

val set_loss : ?only:pkt_class -> 'm t -> rate:float -> seed:int -> unit
(** Bernoulli packet loss per link crossing: each crossing is charged
    (the bits were sent) and then killed with probability [rate]. A
    multi-hop unicast dies at the first lost hop, charging only the
    hops it travelled. With [~only] the coin is tossed only for packets
    of that class (e.g. [`Control] for a lossy control plane over a
    reliable data plane); other packets are never lost and never
    consume randomness. [rate = 0.] disables loss.
    @raise Invalid_argument unless [0 <= rate < 1]. *)

val dropped : 'm t -> int
(** Packets killed so far, for any reason. *)

val dropped_by : 'm t -> drop_reason -> int
(** Packets killed for one specific reason. *)

val on_drop :
  'm t -> (reason:drop_reason -> src:node -> dst:node -> 'm -> unit) -> unit
(** Register a hook called on every packet kill. For {!Loss} and
    {!Link_down} the [src]/[dst] pair is the link crossing where the
    packet died; for {!No_route} and {!Node_down} it is the end-to-end
    pair. Hooks stack. *)

(** {2 Link and node failures}

    The base {!graph} is immutable; failures form an overlay. Each
    effective state change incrementally invalidates the affected
    entries of the {!routes} cache (only SPTs whose answers the fault
    can change; see {!Routes}), bumps {!routes_epoch} and fires
    {!on_topology_change} hooks. Transmits over a dead link (or to/from a dead node) are
    dropped and counted — not charged, the bits were never sent — and a
    packet in flight across an element that fails before its arrival
    instant is killed even if the element was restored meanwhile.
    Repeated failures of an already-dead element are no-ops. *)

val fail_link : 'm t -> node -> node -> unit
(** @raise Invalid_argument if the base graph has no such link. *)

val restore_link : 'm t -> node -> node -> unit
(** @raise Invalid_argument if the base graph has no such link. *)

val fail_links : 'm t -> (node * node) list -> unit
(** Fail a whole set of links {e atomically}: every effective change
    invalidates its routing entries, but {!routes_epoch} bumps and
    {!on_topology_change} hooks fire at most {e once} for the batch —
    this is how a partition severs its cut-set without triggering one
    repair per link. Links already dead are skipped; a batch with no
    effective change fires nothing.
    @raise Invalid_argument if any pair is not a base-graph link (no
    partial application: the whole batch is validated first). *)

val restore_links : 'm t -> (node * node) list -> unit
(** Atomic counterpart of {!fail_links} for healing: one reconvergence
    for the whole batch of revived links.
    @raise Invalid_argument if any pair is not a base-graph link. *)

val fail_node : 'm t -> node -> unit
(** A dead node drops everything addressed to, from, or through it; all
    incident links are effectively dead.
    @raise Invalid_argument on an out-of-range node. *)

val restore_node : 'm t -> node -> unit
(** @raise Invalid_argument on an out-of-range node. *)

val link_alive : 'm t -> node -> node -> bool
(** False when the link itself or either endpoint is down; false for a
    non-link pair. *)

val edge_alive : 'm t -> Netgraph.Graph.edge -> bool
(** Liveness by dense edge id — O(1) against the overlay bitset; what
    protocol layers snapshot to build {!Netgraph.Apsp} liveness
    filters. *)

val node_alive : 'm t -> node -> bool

val live_graph : 'm t -> Netgraph.Graph.t
(** A fresh graph of the surviving topology: base nodes, minus links
    that are dead or have a dead endpoint. *)

val dead_link_list : 'm t -> (node * node) list
(** Base-graph links currently unusable (dead, or a dead endpoint),
    normalized [u < v] and sorted — the shape the invariant verifier
    consumes. *)

val on_topology_change : 'm t -> (unit -> unit) -> unit
(** Register a hook fired after every route reconvergence (stale route
    entries are already invalidated when it runs, so any query made
    from the hook sees post-change answers). Hooks stack. *)
