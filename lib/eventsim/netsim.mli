(** Packet-level network simulation over the event engine.

    Nodes exchange messages of an arbitrary type ['m]. Two primitives
    are offered:

    - {!transmit}: one hop across an existing link, arriving after the
      link delay and charging the link cost to the message's class —
      this is how multicast protocols move packets (they own their
      forwarding logic);
    - {!unicast}: plain IP forwarding below the multicast layer; the
      message travels hop-by-hop along converged unicast routes,
      charging every traversed link, and only the destination's handler
      sees it (intermediate routers forward transparently). Used for
      JOIN/LEAVE requests to the m-router and for encapsulated data
      from off-tree sources.

    Overheads follow the paper's metric (§IV.B): a packet crossing a
    link contributes that link's cost, accumulated separately for
    [`Data] and [`Control] packets. *)

type node = Netgraph.Graph.node

type pkt_class = [ `Data | `Control ]

type 'm t

val create :
  ?sizeof:('m -> int) -> Engine.t -> Netgraph.Graph.t -> classify:('m -> pkt_class) -> 'm t
(** Builds converged unicast routes internally (one Dijkstra per
    node). [sizeof] gives a message's wire size in bytes; with it, the
    simulation also keeps per-class byte counters ({!data_bytes},
    {!control_bytes}) — without it they stay at 0. *)

val engine : 'm t -> Engine.t
val graph : 'm t -> Netgraph.Graph.t
val routes : 'm t -> Routes.t

val classify_of : 'm t -> 'm -> pkt_class
(** Apply the simulation's classifier to a message (used by tracing). *)

val set_handler : 'm t -> node -> ('m t -> from:node -> 'm -> unit) -> unit
(** Install the protocol agent of one node. [from] is the neighbour the
    packet arrived from for {!transmit}, or the original source for
    {!unicast}. Without a handler, arriving packets are dropped. *)

val transmit : 'm t -> ?background:bool -> src:node -> dst:node -> 'm -> unit
(** One-hop send across the link [src]-[dst]. A [background] packet is
    charged and delivered like any other but its delivery event does
    not keep {!Engine.run} alive (periodic keep-alive traffic).
    @raise Invalid_argument if the nodes are not adjacent. *)

val unicast : 'm t -> ?background:bool -> src:node -> dst:node -> 'm -> unit
(** Routed multi-hop send; delivery after the total path delay, cost
    charged per traversed link. [src = dst] delivers locally after zero
    delay. Drops the packet silently if no route exists. *)

val loopback : 'm t -> node -> 'm -> unit
(** Deliver to the node's own handler at the current instant + 0 (an
    intra-router hand-off; no link crossed, nothing charged). *)

(** {2 Accounting} *)

val data_overhead : 'm t -> float
(** Sum of link costs crossed by [`Data] packets so far. *)

val control_overhead : 'm t -> float
(** Same for [`Control] packets (the paper's "protocol overhead"). *)

val data_transmissions : 'm t -> int
(** Number of link crossings by data packets. *)

val control_transmissions : 'm t -> int

val data_bytes : 'm t -> int
(** Bytes crossed by data packets ([sizeof] summed per crossing);
    0 unless {!create} was given [sizeof]. *)

val control_bytes : 'm t -> int

val link_crossings : 'm t -> (node * node) -> int
(** Crossings of one undirected link (both directions pooled). *)

val per_link_crossings : 'm t -> ((node * node) * int) list
(** Every link that carried traffic with its crossing count, ordered by
    link — per-link utilization for reports. *)

val observe : 'm t -> Obs.Metrics.t -> unit
(** Publish the accounting into a registry: [net/data/transmissions],
    [net/control/transmissions], [net/data/bytes], [net/control/bytes],
    [net/data/cost], [net/control/cost], [net/dropped],
    [net/links_used], [net/max_link_crossings]. Idempotent. *)

val on_transmit : 'm t -> (src:node -> dst:node -> 'm -> unit) -> unit
(** Register a trace hook called on every link crossing (after
    accounting, before delivery is scheduled). Hooks stack. *)

(** {2 Node processing capacity} *)

val set_node_processing : 'm t -> node -> Server.t -> service_time:float -> unit
(** Route every packet delivered to this node through a processing
    station first: the protocol handler runs only after the packet has
    queued for and held a processor for [service_time]. Models a
    router's forwarding engine — in this reproduction, the §I traffic
    concentration at shared-tree cores versus the m-router's parallel
    fabric. @raise Invalid_argument on negative service time. *)

val clear_node_processing : 'm t -> node -> unit

(** {2 Failure injection} *)

val set_loss : 'm t -> rate:float -> seed:int -> unit
(** Bernoulli packet loss per link crossing: each crossing is charged
    (the bits were sent) and then killed with probability [rate]. A
    multi-hop unicast dies at the first lost hop, charging only the
    hops it travelled. [rate = 0.] disables loss.
    @raise Invalid_argument unless [0 <= rate < 1]. *)

val dropped : 'm t -> int
(** Packets killed by loss injection so far. *)
