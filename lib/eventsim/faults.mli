(** Scheduled fault injection over a {!Netsim} simulation.

    A fault schedule is a list of (time, event) pairs — scripted by the
    caller, parsed from CLI syntax, or drawn from a seeded PRNG — that
    {!install} turns into engine events. Each event applies the
    corresponding {!Netsim} topology mutation when its instant arrives:
    routes reconverge, in-flight packets over the failing element die,
    and protocol agents observe the change through
    {!Netsim.on_topology_change}.

    Events are scheduled in the foreground: a pending failure keeps
    {!Engine.run} alive, so a schedule reaching past the last protocol
    event still executes fully. *)

type event =
  | Link_down of Netgraph.Graph.node * Netgraph.Graph.node
  | Link_up of Netgraph.Graph.node * Netgraph.Graph.node
  | Node_down of Netgraph.Graph.node
  | Node_up of Netgraph.Graph.node

type spec = { at : float; event : event }

type t
(** Counters of events applied so far (a fault targeting an
    already-dead element still counts as applied; the netsim layer
    makes it a no-op). *)

val install : 'm Netsim.t -> spec list -> t
(** Schedule every event on the simulation's engine. Call before
    {!Engine.run} (scheduling in the past raises in the engine).
    @raise Invalid_argument on a negative event time. *)

val applied : t -> int
(** Total events applied so far. *)

val random_link_failures :
  seed:int ->
  count:int ->
  t0:float ->
  t1:float ->
  ?restore_after:float ->
  Netgraph.Graph.t ->
  spec list
(** [count] distinct links drawn uniformly from the graph, each failing
    at a uniform instant in [\[t0, t1)]; with [~restore_after:d] each
    failure is paired with a restore [d] later. Deterministic in
    [seed]. [count] is clamped to the number of links.
    @raise Invalid_argument if [t1 < t0] or [count < 0]. *)

val parse_link_failure : string -> (spec list, string) result
(** Parse the CLI syntax [A-B\@TIME] or [A-B\@TIME:restore\@TIME'] into
    one or two events. *)

val parse_node_failure : string -> (spec list, string) result
(** Parse [NODE\@TIME] or [NODE\@TIME:restore\@TIME']. *)

val event_to_string : event -> string

val observe : t -> Obs.Metrics.t -> unit
(** Publish [faults/link_down], [faults/link_up], [faults/node_down],
    [faults/node_up]. Idempotent. *)
