(** Scheduled fault injection over a {!Netsim} simulation.

    A fault schedule is a list of (time, event) pairs — scripted by the
    caller, parsed from CLI syntax, or drawn from a seeded PRNG — that
    {!install} turns into engine events. Each event applies the
    corresponding {!Netsim} topology mutation when its instant arrives:
    routes reconverge, in-flight packets over the failing element die,
    and protocol agents observe the change through
    {!Netsim.on_topology_change}.

    Events are scheduled in the foreground: a pending failure keeps
    {!Engine.run} alive, so a schedule reaching past the last protocol
    event still executes fully. *)

type event =
  | Link_down of Netgraph.Graph.node * Netgraph.Graph.node
  | Link_up of Netgraph.Graph.node * Netgraph.Graph.node
  | Node_down of Netgraph.Graph.node
  | Node_up of Netgraph.Graph.node
  | Partition of Netgraph.Graph.node list
      (** Atomically fail the cut-set of the bipartition ([side] vs the
          rest): every base-graph link with exactly one endpoint in the
          list dies in a single {!Netsim.fail_links} batch — in-flight
          packets across the cut are killed and
          {!Netsim.on_topology_change} fires once for the whole cut. *)
  | Heal of Netgraph.Graph.node list
      (** Atomically restore the same cut-set (one
          {!Netsim.restore_links} batch, one reconvergence). Links of
          the cut that failed independently are revived too. *)

type spec = { at : float; event : event }

type t
(** Counters of events applied so far (a fault targeting an
    already-dead element still counts as applied; the netsim layer
    makes it a no-op). *)

val install : 'm Netsim.t -> spec list -> t
(** Schedule every event on the simulation's engine. Call before
    {!Engine.run} (scheduling in the past raises in the engine).
    @raise Invalid_argument on a negative event time. *)

val applied : t -> int
(** Total events applied so far. *)

val random_link_failures :
  seed:int ->
  count:int ->
  t0:float ->
  t1:float ->
  ?restore_after:float ->
  Netgraph.Graph.t ->
  spec list
(** [count] distinct links drawn uniformly from the graph, each failing
    at a uniform instant in [\[t0, t1)]; with [~restore_after:d] each
    failure is paired with a restore [d] later. Deterministic in
    [seed]. [count] is clamped to the number of links.
    @raise Invalid_argument if [t1 < t0] or [count < 0]. *)

val random_partitions :
  seed:int ->
  count:int ->
  t0:float ->
  t1:float ->
  ?heal_after:float ->
  Netgraph.Graph.t ->
  spec list
(** [count] random bipartitions, each isolating a uniformly drawn side
    of 1..n/2 nodes at a uniform instant in [\[t0, t1)]; with
    [~heal_after:d] every partition is paired with the matching heal
    [d] later. Deterministic in [seed].
    @raise Invalid_argument if [t1 < t0], [count < 0] or the graph has
    fewer than two nodes. *)

val parse_link_failure : string -> (spec list, string) result
(** Parse the CLI syntax [A-B\@TIME] or [A-B\@TIME:restore\@TIME'] into
    one or two events. *)

val parse_node_failure : string -> (spec list, string) result
(** Parse [NODE\@TIME] or [NODE\@TIME:restore\@TIME']. *)

val parse_partition : string -> (spec list, string) result
(** Parse [A,B,C\@TIME] or [A,B,C\@TIME:heal\@TIME'] into a partition
    event (side = the listed nodes) and optionally its heal. *)

val event_to_string : event -> string

val observe : t -> Obs.Metrics.t -> unit
(** Publish [faults/link_down], [faults/link_up], [faults/node_down],
    [faults/node_up], [faults/partition], [faults/heal]. Idempotent. *)
