type node = Netgraph.Graph.node

type pkt_class = [ `Data | `Control ]

type drop_reason = Loss | No_route | Link_down | Node_down

let drop_reason_label = function
  | Loss -> "loss"
  | No_route -> "no_route"
  | Link_down -> "link_down"
  | Node_down -> "node_down"

type loss_model = {
  rate : float;
  only : pkt_class option;
  rng : Scmp_util.Prng.t;
}

(* Dense-edge-id bitset over [Bytes]. *)
let bitset_make m = Bytes.make ((m + 7) / 8) '\000'

let bit_get bs e =
  Char.code (Bytes.unsafe_get bs (e lsr 3)) land (1 lsl (e land 7)) <> 0

let bit_set bs e =
  let i = e lsr 3 in
  Bytes.unsafe_set bs i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bs i) lor (1 lsl (e land 7))))

let bit_clear bs e =
  let i = e lsr 3 in
  Bytes.unsafe_set bs i
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get bs i) land lnot (1 lsl (e land 7))))

type 'm t = {
  engine : Engine.t;
  graph : Netgraph.Graph.t;
  (* Edge endpoints by dense edge id, denormalized from the graph for
     the overlay's hot lookups (edge_ok closure, in-flight stamps). *)
  eu : int array;
  ev : int array;
  routes : Routes.t;
  mutable routes_epoch : int;
  classify : 'm -> pkt_class;
  sizeof : ('m -> int) option;
  handlers : ('m t -> from:node -> 'm -> unit) option array;
  mutable data_overhead : float;
  mutable control_overhead : float;
  mutable data_tx : int;
  mutable control_tx : int;
  mutable data_bytes : int;
  mutable control_bytes : int;
  per_link : int array;  (* crossings by edge id *)
  mutable hooks : (src:node -> dst:node -> 'm -> unit) list;
  mutable loss : loss_model option;
  mutable dropped : int;
  mutable dropped_loss : int;
  mutable dropped_no_route : int;
  mutable dropped_link_down : int;
  mutable dropped_node_down : int;
  mutable drop_hooks :
    (reason:drop_reason -> src:node -> dst:node -> 'm -> unit) list;
  (* Fault overlay: the base [graph] is immutable; dead links and dead
     nodes are tracked here — a bitset and plain arrays indexed by dense
     edge id — and [routes], a lazy per-source cache filtered through
     this overlay, is incrementally invalidated on every change (only
     entries the fault can affect are dropped). The [*_fails] counters
     record how many times a link/node has gone down — a packet in
     flight captures them at send time, so a failure during the flight
     is detected at the delivery instant even if the element was
     restored meanwhile. *)
  dead_edge : Bytes.t;
  node_down : bool array;
  link_fails : int array;  (* by edge id *)
  node_fails : int array;
  mutable topo_hooks : (unit -> unit) list;
  (* per-node forwarding engine: deliveries queue for a processor
     before the protocol handler runs *)
  processing : (node, Server.t * float) Hashtbl.t;
}

let create ?sizeof engine graph ~classify =
  let n = Netgraph.Graph.node_count graph in
  let m = Netgraph.Graph.edge_count graph in
  (* The overlay tables exist before the record so the routes cache can
     close over them: an SPT is always built through the *current*
     liveness, and invalidation notices keep cached entries exact. *)
  let eu = Array.init m (Netgraph.Graph.edge_u graph) in
  let ev = Array.init m (Netgraph.Graph.edge_v graph) in
  let dead_edge = bitset_make m in
  let node_down = Array.make n false in
  let edge_ok e =
    (not (bit_get dead_edge e))
    && (not node_down.(eu.(e)))
    && not node_down.(ev.(e))
  in
  {
    engine;
    graph;
    eu;
    ev;
    routes = Routes.compute ~edge_ok graph;
    routes_epoch = 0;
    classify;
    sizeof;
    handlers = Array.make n None;
    data_overhead = 0.0;
    control_overhead = 0.0;
    data_tx = 0;
    control_tx = 0;
    data_bytes = 0;
    control_bytes = 0;
    per_link = Array.make m 0;
    hooks = [];
    loss = None;
    dropped = 0;
    dropped_loss = 0;
    dropped_no_route = 0;
    dropped_link_down = 0;
    dropped_node_down = 0;
    drop_hooks = [];
    dead_edge;
    node_down;
    link_fails = Array.make m 0;
    node_fails = Array.make n 0;
    topo_hooks = [];
    processing = Hashtbl.create 4;
  }

let engine t = t.engine
let graph t = t.graph
let routes t = t.routes
let routes_epoch t = t.routes_epoch
let classify_of t msg = t.classify msg

let set_handler t x h = t.handlers.(x) <- Some h

let set_node_processing t x station ~service_time =
  if service_time < 0.0 then
    invalid_arg "Netsim.set_node_processing: negative service time";
  Hashtbl.replace t.processing x (station, service_time)

let clear_node_processing t x = Hashtbl.remove t.processing x

let set_loss ?only t ~rate ~seed =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Netsim.set_loss: rate must be in [0, 1)";
  t.loss <-
    (if rate = 0.0 then None
     else Some { rate; only; rng = Scmp_util.Prng.create seed })

let dropped t = t.dropped

let dropped_by t reason =
  match reason with
  | Loss -> t.dropped_loss
  | No_route -> t.dropped_no_route
  | Link_down -> t.dropped_link_down
  | Node_down -> t.dropped_node_down

let on_drop t h = t.drop_hooks <- t.drop_hooks @ [ h ]

let note_drop t reason ~src ~dst msg =
  t.dropped <- t.dropped + 1;
  (match reason with
  | Loss -> t.dropped_loss <- t.dropped_loss + 1
  | No_route -> t.dropped_no_route <- t.dropped_no_route + 1
  | Link_down -> t.dropped_link_down <- t.dropped_link_down + 1
  | Node_down -> t.dropped_node_down <- t.dropped_node_down + 1);
  List.iter (fun h -> h ~reason ~src ~dst msg) t.drop_hooks

(* ---------------- Fault overlay ---------------- *)

let node_alive t x = not t.node_down.(x)

let edge_alive t e =
  (not (bit_get t.dead_edge e))
  && node_alive t t.eu.(e)
  && node_alive t t.ev.(e)

let link_alive t a b =
  match Netgraph.Graph.edge_id_opt t.graph a b with
  | Some e -> edge_alive t e
  | None -> false

let live_graph t =
  Netgraph.Graph.filter_links t.graph ~f:(fun l ->
      link_alive t l.Netgraph.Graph.u l.Netgraph.Graph.v)

let dead_link_list t =
  let acc = ref [] in
  for e = Netgraph.Graph.edge_count t.graph - 1 downto 0 do
    if not (edge_alive t e) then acc := (t.eu.(e), t.ev.(e)) :: !acc
  done;
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
    !acc

let on_topology_change t h = t.topo_hooks <- t.topo_hooks @ [ h ]

(* Route invalidation happened incrementally before this is called (see
   the fail_*/restore_* functions); reconvergence itself is just the
   epoch bump and the change notification. *)
let reconverge t =
  t.routes_epoch <- t.routes_epoch + 1;
  List.iter (fun h -> h ()) t.topo_hooks

let edge_of t a b msg =
  match Netgraph.Graph.edge_id_opt t.graph a b with
  | Some e -> e
  | None -> invalid_arg msg

let fail_link t a b =
  let e = edge_of t a b "Netsim.fail_link: no such link" in
  if not (bit_get t.dead_edge e) then begin
    bit_set t.dead_edge e;
    t.link_fails.(e) <- t.link_fails.(e) + 1;
    Routes.note_edge_down t.routes e;
    reconverge t
  end

let restore_link t a b =
  let e = edge_of t a b "Netsim.restore_link: no such link" in
  if bit_get t.dead_edge e then begin
    bit_clear t.dead_edge e;
    (* Only an effective revival invalidates: the link may still be
       severed by a dead endpoint, in which case nothing changed. *)
    if edge_alive t e then Routes.note_edge_up t.routes e;
    reconverge t
  end

(* Batch link faults: used by partition events, where the whole cut-set
   must flip in one atomic step — route invalidation runs per edge, but
   the epoch bump and the topology-change hooks fire once for the whole
   batch, so protocol agents see one reconvergence per cut instead of
   one per severed link. *)
let fail_links t pairs =
  let edges =
    List.map (fun (a, b) -> edge_of t a b "Netsim.fail_links: no such link") pairs
  in
  let effective = ref false in
  List.iter
    (fun e ->
      if not (bit_get t.dead_edge e) then begin
        bit_set t.dead_edge e;
        t.link_fails.(e) <- t.link_fails.(e) + 1;
        Routes.note_edge_down t.routes e;
        effective := true
      end)
    edges;
  if !effective then reconverge t

let restore_links t pairs =
  let edges =
    List.map (fun (a, b) -> edge_of t a b "Netsim.restore_links: no such link")
      pairs
  in
  let effective = ref false in
  List.iter
    (fun e ->
      if bit_get t.dead_edge e then begin
        bit_clear t.dead_edge e;
        if edge_alive t e then Routes.note_edge_up t.routes e;
        effective := true
      end)
    edges;
  if !effective then reconverge t

(* A node fault is, for routing purposes, the fault of its incident
   edges: cached SPTs reach (or leave) x only across those, so applying
   the edge rule to each is exact. Edges already severed (dead link or
   dead far endpoint) are no-ops for note_edge_down — no valid cached
   tree uses them — and are skipped for note_edge_up. *)
let fail_node t x =
  if x < 0 || x >= Array.length t.node_down then
    invalid_arg "Netsim.fail_node: no such node";
  if not t.node_down.(x) then begin
    t.node_down.(x) <- true;
    t.node_fails.(x) <- t.node_fails.(x) + 1;
    Netgraph.Graph.iter_incident t.graph x (fun e _ ->
        Routes.note_edge_down t.routes e);
    reconverge t
  end

let restore_node t x =
  if x < 0 || x >= Array.length t.node_down then
    invalid_arg "Netsim.restore_node: no such node";
  if t.node_down.(x) then begin
    t.node_down.(x) <- false;
    Netgraph.Graph.iter_incident t.graph x (fun e _ ->
        if edge_alive t e then Routes.note_edge_up t.routes e);
    reconverge t
  end

(* In-flight guard: the stamp of an edge counts the failures of the
   link and of both endpoints as of the send instant; any change by the
   delivery instant means the packet crossed a failing element. *)
let edge_stamp t e = t.link_fails.(e) + t.node_fails.(t.eu.(e)) + t.node_fails.(t.ev.(e))

let path_obstruction t ~stamped ~dst ~dst_stamp =
  if not (node_alive t dst) then Some Node_down
  else if t.node_fails.(dst) <> dst_stamp then Some Node_down
  else
    let rec scan = function
      | [] -> None
      | (e, stamp) :: rest ->
        if not (node_alive t t.eu.(e) && node_alive t t.ev.(e)) then
          Some Node_down
        else if bit_get t.dead_edge e || edge_stamp t e <> stamp then
          Some Link_down
        else scan rest
    in
    scan stamped

(* ---------------- Loss ---------------- *)

(* A crossing consumed the link (and is charged) even when the packet
   then dies; loss is decided per crossing. *)
let lost t ~src ~dst msg =
  match t.loss with
  | None -> false
  | Some { rate; only; rng } ->
    let eligible =
      match (only, t.classify msg) with
      | None, _ -> true
      | Some `Data, `Data -> true
      | Some `Control, `Control -> true
      | Some `Data, `Control | Some `Control, `Data -> false
    in
    if not eligible then false
    else begin
      let dead = Scmp_util.Prng.chance rng rate in
      if dead then note_drop t Loss ~src ~dst msg;
      dead
    end

(* ---------------- Delivery ---------------- *)

let deliver t ?(background = false) ?(via = []) ~at ~from dst msg =
  let stamped = List.map (fun e -> (e, edge_stamp t e)) via in
  let dst_stamp = t.node_fails.(dst) in
  Engine.schedule_at t.engine ~background ~time:at (fun () ->
      match path_obstruction t ~stamped ~dst ~dst_stamp with
      | Some reason -> note_drop t reason ~src:from ~dst msg
      | None -> (
        let invoke () =
          match t.handlers.(dst) with
          | Some h -> h t ~from msg
          | None -> ()
        in
        match Hashtbl.find_opt t.processing dst with
        | None -> invoke ()
        | Some (station, service_time) ->
          Server.submit station ~service_time invoke))

(* [e] is the edge crossed, [src]/[dst] its traversal direction (hooks
   and per-class accounting are direction-agnostic; the edge id keys
   the crossing counter). *)
let charge t e ~src ~dst msg =
  let cost = Netgraph.Graph.edge_cost t.graph e in
  let bytes = match t.sizeof with Some f -> f msg | None -> 0 in
  (match t.classify msg with
  | `Data ->
    t.data_overhead <- t.data_overhead +. cost;
    t.data_tx <- t.data_tx + 1;
    t.data_bytes <- t.data_bytes + bytes
  | `Control ->
    t.control_overhead <- t.control_overhead +. cost;
    t.control_tx <- t.control_tx + 1;
    t.control_bytes <- t.control_bytes + bytes);
  t.per_link.(e) <- t.per_link.(e) + 1;
  List.iter (fun h -> h ~src ~dst msg) t.hooks

let transmit t ?background ~src ~dst msg =
  let e = edge_of t src dst "Netsim.transmit: nodes are not adjacent" in
  if not (edge_alive t e) then
    let reason =
      if node_alive t src && node_alive t dst then Link_down else Node_down
    in
    note_drop t reason ~src ~dst msg
  else begin
    charge t e ~src ~dst msg;
    if not (lost t ~src ~dst msg) then begin
      let delay = Netgraph.Graph.edge_delay t.graph e in
      deliver t ?background ~via:[ e ]
        ~at:(Engine.now t.engine +. delay)
        ~from:src dst msg
    end
  end

let unicast t ?background ~src ~dst msg =
  if not (node_alive t src && node_alive t dst) then
    note_drop t Node_down ~src ~dst msg
  else if src = dst then
    deliver t ?background ~at:(Engine.now t.engine) ~from:src dst msg
  else
    match Routes.path t.routes ~src ~dst with
    | None -> note_drop t No_route ~src ~dst msg
    | Some p ->
      (* Charge every hop now; schedule a single delivery at the path's
         total delay. Per-hop timing is not observable above IP, so this
         is equivalent to hop-by-hop forwarding and far cheaper. *)
      let hops =
        List.map
          (fun (a, b) ->
            match Netgraph.Graph.edge_id_opt t.graph a b with
            | Some e -> (e, a, b)
            | None -> assert false (* route paths walk graph links *))
          (Netgraph.Path.edges p)
      in
      let rec hop = function
        | [] -> true
        | (e, a, b) :: rest ->
          charge t e ~src:a ~dst:b msg;
          if lost t ~src:a ~dst:b msg then false else hop rest
      in
      let survived = hop hops in
      if survived then begin
        (* The converged route distance is the path's delay, summed
           head-to-tail by Dijkstra itself — no per-edge recompute. *)
        let delay = Routes.distance t.routes ~src ~dst in
        deliver t ?background
          ~via:(List.map (fun (e, _, _) -> e) hops)
          ~at:(Engine.now t.engine +. delay)
          ~from:src dst msg
      end

let loopback t x msg = deliver t ~at:(Engine.now t.engine) ~from:x x msg

let data_overhead t = t.data_overhead
let control_overhead t = t.control_overhead
let data_transmissions t = t.data_tx
let control_transmissions t = t.control_tx
let data_bytes t = t.data_bytes
let control_bytes t = t.control_bytes

let link_crossings t (a, b) =
  match Netgraph.Graph.edge_id_opt t.graph a b with
  | Some e -> t.per_link.(e)
  | None -> 0

let per_link_crossings t =
  let acc = ref [] in
  for e = Array.length t.per_link - 1 downto 0 do
    if t.per_link.(e) > 0 then acc := ((t.eu.(e), t.ev.(e)), t.per_link.(e)) :: !acc
  done;
  List.sort
    (fun ((a1, b1), _) ((a2, b2), _) ->
      match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
    !acc

let observe t m =
  let set_c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m name) v in
  let set_g name v = Obs.Metrics.set (Obs.Metrics.gauge m name) v in
  set_c "net/data/transmissions" t.data_tx;
  set_c "net/control/transmissions" t.control_tx;
  set_c "net/data/bytes" t.data_bytes;
  set_c "net/control/bytes" t.control_bytes;
  set_c "net/dropped" t.dropped;
  set_c "net/dropped/loss" t.dropped_loss;
  set_c "net/dropped/no_route" t.dropped_no_route;
  set_c "net/dropped/link_down" t.dropped_link_down;
  set_c "net/dropped/node_down" t.dropped_node_down;
  set_c "net/routes_epoch" t.routes_epoch;
  set_c "routes/spt_computed" (Routes.computed t.routes);
  set_c "routes/invalidated" (Routes.invalidated t.routes);
  set_g "net/data/cost" t.data_overhead;
  set_g "net/control/cost" t.control_overhead;
  set_c "net/links_used"
    (Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 t.per_link);
  set_c "net/max_link_crossings" (Array.fold_left max 0 t.per_link)

let on_transmit t h = t.hooks <- t.hooks @ [ h ]
