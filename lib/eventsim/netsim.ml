type node = Netgraph.Graph.node

type pkt_class = [ `Data | `Control ]

type 'm t = {
  engine : Engine.t;
  graph : Netgraph.Graph.t;
  routes : Routes.t;
  classify : 'm -> pkt_class;
  sizeof : ('m -> int) option;
  handlers : ('m t -> from:node -> 'm -> unit) option array;
  mutable data_overhead : float;
  mutable control_overhead : float;
  mutable data_tx : int;
  mutable control_tx : int;
  mutable data_bytes : int;
  mutable control_bytes : int;
  per_link : (node * node, int) Hashtbl.t;
  mutable hooks : (src:node -> dst:node -> 'm -> unit) list;
  mutable loss : (float * Scmp_util.Prng.t) option;
  mutable dropped : int;
  (* per-node forwarding engine: deliveries queue for a processor
     before the protocol handler runs *)
  processing : (node, Server.t * float) Hashtbl.t;
}

let create ?sizeof engine graph ~classify =
  {
    engine;
    graph;
    routes = Routes.compute graph;
    classify;
    sizeof;
    handlers = Array.make (Netgraph.Graph.node_count graph) None;
    data_overhead = 0.0;
    control_overhead = 0.0;
    data_tx = 0;
    control_tx = 0;
    data_bytes = 0;
    control_bytes = 0;
    per_link = Hashtbl.create 64;
    hooks = [];
    loss = None;
    dropped = 0;
    processing = Hashtbl.create 4;
  }

let engine t = t.engine
let graph t = t.graph
let routes t = t.routes
let classify_of t msg = t.classify msg

let set_handler t x h = t.handlers.(x) <- Some h

let set_node_processing t x station ~service_time =
  if service_time < 0.0 then
    invalid_arg "Netsim.set_node_processing: negative service time";
  Hashtbl.replace t.processing x (station, service_time)

let clear_node_processing t x = Hashtbl.remove t.processing x

let set_loss t ~rate ~seed =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Netsim.set_loss: rate must be in [0, 1)";
  t.loss <- (if rate = 0.0 then None else Some (rate, Scmp_util.Prng.create seed))

let dropped t = t.dropped

(* A crossing consumed the link (and is charged) even when the packet
   then dies; loss is decided per crossing. *)
let lost t =
  match t.loss with
  | None -> false
  | Some (rate, rng) ->
    let dead = Scmp_util.Prng.chance rng rate in
    if dead then t.dropped <- t.dropped + 1;
    dead

let deliver t ?(background = false) ~at ~from dst msg =
  Engine.schedule_at t.engine ~background ~time:at (fun () ->
      let invoke () =
        match t.handlers.(dst) with
        | Some h -> h t ~from msg
        | None -> ()
      in
      match Hashtbl.find_opt t.processing dst with
      | None -> invoke ()
      | Some (station, service_time) ->
        Server.submit station ~service_time invoke)

let charge t ~src ~dst msg =
  let cost = Netgraph.Graph.link_cost t.graph src dst in
  let bytes = match t.sizeof with Some f -> f msg | None -> 0 in
  (match t.classify msg with
  | `Data ->
    t.data_overhead <- t.data_overhead +. cost;
    t.data_tx <- t.data_tx + 1;
    t.data_bytes <- t.data_bytes + bytes
  | `Control ->
    t.control_overhead <- t.control_overhead +. cost;
    t.control_tx <- t.control_tx + 1;
    t.control_bytes <- t.control_bytes + bytes);
  let key = (min src dst, max src dst) in
  Hashtbl.replace t.per_link key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_link key));
  List.iter (fun h -> h ~src ~dst msg) t.hooks

let transmit t ?background ~src ~dst msg =
  if not (Netgraph.Graph.has_link t.graph src dst) then
    invalid_arg "Netsim.transmit: nodes are not adjacent";
  charge t ~src ~dst msg;
  if not (lost t) then begin
    let delay = Netgraph.Graph.link_delay t.graph src dst in
    deliver t ?background ~at:(Engine.now t.engine +. delay) ~from:src dst msg
  end

let unicast t ?background ~src ~dst msg =
  if src = dst then deliver t ?background ~at:(Engine.now t.engine) ~from:src dst msg
  else
    match Routes.path t.routes ~src ~dst with
    | None -> ()
    | Some p ->
      (* Charge every hop now; schedule a single delivery at the path's
         total delay. Per-hop timing is not observable above IP, so this
         is equivalent to hop-by-hop forwarding and far cheaper. *)
      let edges = Netgraph.Path.edges p in
      let rec hop = function
        | [] -> true
        | (a, b) :: rest ->
          charge t ~src:a ~dst:b msg;
          if lost t then false else hop rest
      in
      let survived = hop edges in
      if survived then begin
        let delay = Netgraph.Path.delay t.graph p in
        deliver t ?background ~at:(Engine.now t.engine +. delay) ~from:src dst msg
      end

let loopback t x msg = deliver t ~at:(Engine.now t.engine) ~from:x x msg

let data_overhead t = t.data_overhead
let control_overhead t = t.control_overhead
let data_transmissions t = t.data_tx
let control_transmissions t = t.control_tx
let data_bytes t = t.data_bytes
let control_bytes t = t.control_bytes

let link_crossings t (a, b) =
  Option.value ~default:0 (Hashtbl.find_opt t.per_link (min a b, max a b))

let per_link_crossings t =
  Hashtbl.fold (fun link n acc -> (link, n) :: acc) t.per_link []
  |> List.sort (fun ((a1, b1), _) ((a2, b2), _) ->
         match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)

let observe t m =
  let set_c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m name) v in
  let set_g name v = Obs.Metrics.set (Obs.Metrics.gauge m name) v in
  set_c "net/data/transmissions" t.data_tx;
  set_c "net/control/transmissions" t.control_tx;
  set_c "net/data/bytes" t.data_bytes;
  set_c "net/control/bytes" t.control_bytes;
  set_c "net/dropped" t.dropped;
  set_g "net/data/cost" t.data_overhead;
  set_g "net/control/cost" t.control_overhead;
  set_c "net/links_used" (Hashtbl.length t.per_link);
  let max_crossings = Hashtbl.fold (fun _ n acc -> max n acc) t.per_link 0 in
  set_c "net/max_link_crossings" max_crossings

let on_transmit t h = t.hooks <- t.hooks @ [ h ]
