type node = Netgraph.Graph.node

type pkt_class = [ `Data | `Control ]

type drop_reason = Loss | No_route | Link_down | Node_down

let drop_reason_label = function
  | Loss -> "loss"
  | No_route -> "no_route"
  | Link_down -> "link_down"
  | Node_down -> "node_down"

type loss_model = {
  rate : float;
  only : pkt_class option;
  rng : Scmp_util.Prng.t;
}

(* Dense-edge-id bitset over [Bytes]. *)
let bitset_make m = Bytes.make ((m + 7) / 8) '\000'

let bit_get bs e =
  Char.code (Bytes.unsafe_get bs (e lsr 3)) land (1 lsl (e land 7)) <> 0

let bit_set bs e =
  let i = e lsr 3 in
  Bytes.unsafe_set bs i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bs i) lor (1 lsl (e land 7))))

let bit_clear bs e =
  let i = e lsr 3 in
  Bytes.unsafe_set bs i
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get bs i) land lnot (1 lsl (e land 7))))

(* ---------------- In-flight slabs ---------------- *)

(* A free-list slab hands a boxed payload an int ticket so it can ride
   the engine's closure-free fast path ({!Engine.schedule_fast}) as an
   immediate. A freed slot keeps its last value reachable until a later
   alloc overwrites it — in-flight populations are small and
   short-lived and the arrays die with the run, so the stale reference
   is accepted (the alternative, a dummy ['a] to blank with, does not
   exist). *)
type 'a slab = {
  mutable s_vals : 'a array;
  mutable s_link : int array;  (* free-list chain; -1 ends it *)
  mutable s_free : int;
}

let slab_create () = { s_vals = [||]; s_link = [||]; s_free = -1 }

let slab_alloc s v =
  if s.s_free >= 0 then begin
    let i = s.s_free in
    s.s_free <- Array.unsafe_get s.s_link i;
    Array.unsafe_set s.s_vals i v;
    i
  end
  else begin
    (* grow with [v] as the filler — no dummy payload fabricated *)
    let cap = Array.length s.s_vals in
    let ncap = if cap = 0 then 16 else 2 * cap in
    let vals = Array.make ncap v in
    Array.blit s.s_vals 0 vals 0 cap;
    let link = Array.make ncap (-1) in
    for i = cap + 1 to ncap - 2 do
      link.(i) <- i + 1
    done;
    s.s_vals <- vals;
    s.s_link <- link;
    s.s_free <- (if cap + 1 < ncap then cap + 1 else -1);
    cap
  end

let slab_take s i =
  let v = Array.unsafe_get s.s_vals i in
  Array.unsafe_set s.s_link i s.s_free;
  s.s_free <- i;
  v

(* ---------------- Hook sets ---------------- *)

(* Registration prepends (O(1)); iteration walks an in-registration-
   order array materialized lazily after each registration burst — the
   hot paths (charge, drop) iterate allocation-free, and registering N
   hooks costs O(N) total instead of the old [hooks @ [h]] quadratic
   append. *)
type 'h hookset = {
  mutable rev : 'h list;
  mutable arr : 'h array;
  mutable stale : bool;
}

let hookset () = { rev = []; arr = [||]; stale = false }

let hook_add hs h =
  hs.rev <- h :: hs.rev;
  hs.stale <- true

let hook_array hs =
  if hs.stale then begin
    hs.arr <- Array.of_list (List.rev hs.rev);
    hs.stale <- false
  end;
  hs.arr

type 'm t = {
  engine : Engine.t;
  graph : Netgraph.Graph.t;
  (* Edge endpoints by dense edge id, denormalized from the graph for
     the overlay's hot lookups (edge_ok closure, in-flight stamps). *)
  eu : int array;
  ev : int array;
  routes : Routes.t;
  mutable routes_epoch : int;
  classify : 'm -> pkt_class;
  sizeof : ('m -> int) option;
  handlers : ('m t -> from:node -> 'm -> unit) option array;
  mutable data_overhead : float;
  mutable control_overhead : float;
  mutable data_tx : int;
  mutable control_tx : int;
  mutable data_bytes : int;
  mutable control_bytes : int;
  per_link : int array;  (* crossings by edge id *)
  hooks : (src:node -> dst:node -> 'm -> unit) hookset;
  mutable loss : loss_model option;
  mutable dropped : int;
  mutable dropped_loss : int;
  mutable dropped_no_route : int;
  mutable dropped_link_down : int;
  mutable dropped_node_down : int;
  drop_hooks : (reason:drop_reason -> src:node -> dst:node -> 'm -> unit) hookset;
  (* Fault overlay: the base [graph] is immutable; dead links and dead
     nodes are tracked here — a bitset and plain arrays indexed by dense
     edge id — and [routes], a lazy per-source cache filtered through
     this overlay, is incrementally invalidated on every change (only
     entries the fault can affect are dropped). The [*_fails] counters
     record how many times a link/node has gone down — a packet in
     flight captures them at send time, so a failure during the flight
     is detected at the delivery instant even if the element was
     restored meanwhile. *)
  dead_edge : Bytes.t;
  node_down : bool array;
  (* dead edges + down nodes currently in effect; [0] means the
     overlay is clean and SPT builds may skip the edge filter *)
  faults_live : int ref;
  link_fails : int array;  (* by edge id *)
  node_fails : int array;
  topo_hooks : (unit -> unit) hookset;
  (* per-node forwarding engine: deliveries queue for a processor
     before the protocol handler runs *)
  processing : (Server.t * float) option array;
  (* In-flight storage for the closure-free delivery fast path: the
     payload rides as a [msgs] slot, a multi-hop guard as a [paths]
     slot holding [|e0; stamp0; e1; stamp1; ...|]. *)
  msgs : 'm slab;
  paths : int array slab;
  mutable d_edge1 : Engine.dispatch;  (* 0- or 1-edge delivery *)
  mutable d_hop : Engine.dispatch;  (* multi-hop delivery *)
  (* Scratch for the unicast pred-chain walk: hop edges and the node
     sequence, filled from the tail (paths have at most n-1 edges). *)
  scratch_e : int array;
  scratch_n : int array;
}

let engine t = t.engine
let graph t = t.graph
let routes t = t.routes
let routes_epoch t = t.routes_epoch
let classify_of t msg = t.classify msg

let set_handler t x h = t.handlers.(x) <- Some h

let set_node_processing t x station ~service_time =
  if service_time < 0.0 then
    invalid_arg "Netsim.set_node_processing: negative service time";
  t.processing.(x) <- Some (station, service_time)

let clear_node_processing t x = t.processing.(x) <- None

let set_loss ?only t ~rate ~seed =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Netsim.set_loss: rate must be in [0, 1)";
  t.loss <-
    (if rate = 0.0 then None
     else Some { rate; only; rng = Scmp_util.Prng.create seed })

let dropped t = t.dropped

let dropped_by t reason =
  match reason with
  | Loss -> t.dropped_loss
  | No_route -> t.dropped_no_route
  | Link_down -> t.dropped_link_down
  | Node_down -> t.dropped_node_down

let on_drop t h = hook_add t.drop_hooks h

let note_drop t reason ~src ~dst msg =
  t.dropped <- t.dropped + 1;
  (match reason with
  | Loss -> t.dropped_loss <- t.dropped_loss + 1
  | No_route -> t.dropped_no_route <- t.dropped_no_route + 1
  | Link_down -> t.dropped_link_down <- t.dropped_link_down + 1
  | Node_down -> t.dropped_node_down <- t.dropped_node_down + 1);
  let hs = hook_array t.drop_hooks in
  for i = 0 to Array.length hs - 1 do
    (Array.unsafe_get hs i) ~reason ~src ~dst msg
  done

(* ---------------- Fault overlay ---------------- *)

let node_alive t x = not t.node_down.(x)

let edge_alive t e =
  (not (bit_get t.dead_edge e))
  && node_alive t t.eu.(e)
  && node_alive t t.ev.(e)

let link_alive t a b =
  match Netgraph.Graph.edge_id_ix t.graph a b with
  | -1 -> false
  | e -> edge_alive t e

let live_graph t =
  Netgraph.Graph.filter_links t.graph ~f:(fun l ->
      link_alive t l.Netgraph.Graph.u l.Netgraph.Graph.v)

let dead_link_list t =
  let acc = ref [] in
  for e = Netgraph.Graph.edge_count t.graph - 1 downto 0 do
    if not (edge_alive t e) then acc := (t.eu.(e), t.ev.(e)) :: !acc
  done;
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
    !acc

let on_topology_change t h = hook_add t.topo_hooks h

(* Route invalidation happened incrementally before this is called (see
   the fail_*/restore_* functions); reconvergence itself is just the
   epoch bump and the change notification. *)
let reconverge t =
  t.routes_epoch <- t.routes_epoch + 1;
  let hs = hook_array t.topo_hooks in
  for i = 0 to Array.length hs - 1 do
    (Array.unsafe_get hs i) ()
  done

let edge_of t a b msg =
  match Netgraph.Graph.edge_id_ix t.graph a b with
  | -1 -> invalid_arg msg
  | e -> e

let fail_link t a b =
  let e = edge_of t a b "Netsim.fail_link: no such link" in
  if not (bit_get t.dead_edge e) then begin
    bit_set t.dead_edge e;
    incr t.faults_live;
    t.link_fails.(e) <- t.link_fails.(e) + 1;
    Routes.note_edge_down t.routes e;
    reconverge t
  end

let restore_link t a b =
  let e = edge_of t a b "Netsim.restore_link: no such link" in
  if bit_get t.dead_edge e then begin
    bit_clear t.dead_edge e;
    decr t.faults_live;
    (* Only an effective revival invalidates: the link may still be
       severed by a dead endpoint, in which case nothing changed. *)
    if edge_alive t e then Routes.note_edge_up t.routes e;
    reconverge t
  end

(* Batch link faults: used by partition events, where the whole cut-set
   must flip in one atomic step — route invalidation runs per edge, but
   the epoch bump and the topology-change hooks fire once for the whole
   batch, so protocol agents see one reconvergence per cut instead of
   one per severed link. *)
let fail_links t pairs =
  let edges =
    List.map (fun (a, b) -> edge_of t a b "Netsim.fail_links: no such link") pairs
  in
  let effective = ref false in
  List.iter
    (fun e ->
      if not (bit_get t.dead_edge e) then begin
        bit_set t.dead_edge e;
        incr t.faults_live;
        t.link_fails.(e) <- t.link_fails.(e) + 1;
        Routes.note_edge_down t.routes e;
        effective := true
      end)
    edges;
  if !effective then reconverge t

let restore_links t pairs =
  let edges =
    List.map (fun (a, b) -> edge_of t a b "Netsim.restore_links: no such link")
      pairs
  in
  let effective = ref false in
  List.iter
    (fun e ->
      if bit_get t.dead_edge e then begin
        bit_clear t.dead_edge e;
        decr t.faults_live;
        if edge_alive t e then Routes.note_edge_up t.routes e;
        effective := true
      end)
    edges;
  if !effective then reconverge t

(* A node fault is, for routing purposes, the fault of its incident
   edges: cached SPTs reach (or leave) x only across those, so applying
   the edge rule to each is exact. Edges already severed (dead link or
   dead far endpoint) are no-ops for note_edge_down — no valid cached
   tree uses them — and are skipped for note_edge_up. *)
let fail_node t x =
  if x < 0 || x >= Array.length t.node_down then
    invalid_arg "Netsim.fail_node: no such node";
  if not t.node_down.(x) then begin
    t.node_down.(x) <- true;
    incr t.faults_live;
    t.node_fails.(x) <- t.node_fails.(x) + 1;
    Netgraph.Graph.iter_incident t.graph x (fun e _ ->
        Routes.note_edge_down t.routes e);
    reconverge t
  end

let restore_node t x =
  if x < 0 || x >= Array.length t.node_down then
    invalid_arg "Netsim.restore_node: no such node";
  if t.node_down.(x) then begin
    t.node_down.(x) <- false;
    decr t.faults_live;
    Netgraph.Graph.iter_incident t.graph x (fun e _ ->
        if edge_alive t e then Routes.note_edge_up t.routes e);
    reconverge t
  end

(* In-flight guard: the stamp of an edge counts the failures of the
   link and of both endpoints as of the send instant; any change by the
   delivery instant means the packet crossed a failing element. *)
let edge_stamp t e = t.link_fails.(e) + t.node_fails.(t.eu.(e)) + t.node_fails.(t.ev.(e))

(* ---------------- Loss ---------------- *)

(* A crossing consumed the link (and is charged) even when the packet
   then dies; loss is decided per crossing. *)
let lost t ~src ~dst msg =
  match t.loss with
  | None -> false
  | Some { rate; only; rng } ->
    let eligible =
      match (only, t.classify msg) with
      | None, _ -> true
      | Some `Data, `Data -> true
      | Some `Control, `Control -> true
      | Some `Data, `Control | Some `Control, `Data -> false
    in
    if not eligible then false
    else begin
      let dead = Scmp_util.Prng.chance rng rate in
      if dead then note_drop t Loss ~src ~dst msg;
      dead
    end

(* ---------------- Delivery ---------------- *)

(* Fast-path events carry node pairs packed into one immediate: node
   ids are dense and far below 2^31 on any simulable topology. *)
let mask31 = (1 lsl 31) - 1

let finish t ~from dst msg =
  match Array.unsafe_get t.processing dst with
  | None -> (
    match t.handlers.(dst) with Some h -> h t ~from msg | None -> ())
  | Some (station, service_time) ->
    Server.submit station ~service_time (fun () ->
        match t.handlers.(dst) with Some h -> h t ~from msg | None -> ())

(* Delivery of a packet that crossed at most one edge ([e = -1]: none —
   loopback / self-unicast). The obstruction checks replay
   the old [path_obstruction] order exactly: destination liveness, then
   destination stamp, then per-edge endpoint liveness (Node_down), then
   edge death or stamp change (Link_down). *)
let run_edge1 t slot packed e estamp dstamp =
  let msg = slab_take t.msgs slot in
  let from = packed land mask31 and dst = packed lsr 31 in
  if not (node_alive t dst) then note_drop t Node_down ~src:from ~dst msg
  else if t.node_fails.(dst) <> dstamp then
    note_drop t Node_down ~src:from ~dst msg
  else if e >= 0 && not (node_alive t t.eu.(e) && node_alive t t.ev.(e)) then
    note_drop t Node_down ~src:from ~dst msg
  else if e >= 0 && (bit_get t.dead_edge e || edge_stamp t e <> estamp) then
    note_drop t Link_down ~src:from ~dst msg
  else finish t ~from dst msg

(* Multi-hop delivery: the stamped path rides as a [paths] slab slot. *)
let run_hop t slot packed dstamp pslot _ =
  let msg = slab_take t.msgs slot in
  let path = slab_take t.paths pslot in
  let from = packed land mask31 and dst = packed lsr 31 in
  if not (node_alive t dst) then note_drop t Node_down ~src:from ~dst msg
  else if t.node_fails.(dst) <> dstamp then
    note_drop t Node_down ~src:from ~dst msg
  else begin
    let len = Array.length path in
    let rec scan i =
      if i >= len then None
      else begin
        let e = Array.unsafe_get path i in
        if not (node_alive t t.eu.(e) && node_alive t t.ev.(e)) then
          Some Node_down
        else if
          bit_get t.dead_edge e
          || edge_stamp t e <> Array.unsafe_get path (i + 1)
        then Some Link_down
        else scan (i + 2)
      end
    in
    match scan 0 with
    | Some reason -> note_drop t reason ~src:from ~dst msg
    | None -> finish t ~from dst msg
  end

(* Schedule a 0/1-edge delivery: one slab store + one flat event record,
   no closure, no via list. Stamps are captured here — the send
   instant. *)
let send_edge1 t ~background ~at ~from dst e msg =
  let slot = slab_alloc t.msgs msg in
  let estamp = if e >= 0 then edge_stamp t e else 0 in
  Engine.schedule_fast t.engine ~background ~time:at t.d_edge1 slot
    ((dst lsl 31) lor from)
    e estamp t.node_fails.(dst)

(* [e] is the edge crossed, [src]/[dst] its traversal direction (hooks
   and per-class accounting are direction-agnostic; the edge id keys
   the crossing counter). *)
let charge t e ~src ~dst msg =
  let cost = Netgraph.Graph.edge_cost t.graph e in
  let bytes = match t.sizeof with Some f -> f msg | None -> 0 in
  (match t.classify msg with
  | `Data ->
    t.data_overhead <- t.data_overhead +. cost;
    t.data_tx <- t.data_tx + 1;
    t.data_bytes <- t.data_bytes + bytes
  | `Control ->
    t.control_overhead <- t.control_overhead +. cost;
    t.control_tx <- t.control_tx + 1;
    t.control_bytes <- t.control_bytes + bytes);
  t.per_link.(e) <- t.per_link.(e) + 1;
  let hs = hook_array t.hooks in
  for i = 0 to Array.length hs - 1 do
    (Array.unsafe_get hs i) ~src ~dst msg
  done

let transmit t ?(background = false) ~src ~dst msg =
  let e = edge_of t src dst "Netsim.transmit: nodes are not adjacent" in
  if not (edge_alive t e) then
    let reason =
      if node_alive t src && node_alive t dst then Link_down else Node_down
    in
    note_drop t reason ~src ~dst msg
  else begin
    charge t e ~src ~dst msg;
    if not (lost t ~src ~dst msg) then begin
      let delay = Netgraph.Graph.edge_delay t.graph e in
      send_edge1 t ~background
        ~at:(Engine.now t.engine +. delay)
        ~from:src dst e msg
    end
  end

let unicast t ?(background = false) ~src ~dst msg =
  if not (node_alive t src && node_alive t dst) then
    note_drop t Node_down ~src ~dst msg
  else if src = dst then
    send_edge1 t ~background ~at:(Engine.now t.engine) ~from:src dst (-1) msg
  else begin
    let r = Routes.spt t.routes ~src in
    if not (Netgraph.Dijkstra.reachable r dst) then
      note_drop t No_route ~src ~dst msg
    else begin
      (* Walk the predecessor chain dst→src into the scratch tail — the
         same hop sequence [Routes.path] would materialize, without the
         node-list and hop-tuple allocations. *)
      let se = t.scratch_e and sn = t.scratch_n in
      let last = Array.length sn - 1 in
      Array.unsafe_set sn last dst;
      let i = ref last in
      let y = ref dst in
      while !y <> src do
        let j = !i in
        Array.unsafe_set se (j - 1) (Netgraph.Dijkstra.parent_edge_ix r !y);
        let p = Netgraph.Dijkstra.parent_ix r !y in
        Array.unsafe_set sn (j - 1) p;
        i := j - 1;
        y := p
      done;
      let start = !i in
      (* Charge every hop now, in path order (the loss RNG consumes one
         draw per eligible crossing, so the order is semantics);
         schedule a single delivery at the path's total delay. Per-hop
         timing is not observable above IP, so this is equivalent to
         hop-by-hop forwarding and far cheaper. *)
      let rec hop j =
        if j >= last then true
        else begin
          let e = Array.unsafe_get se j in
          let a = Array.unsafe_get sn j and b = Array.unsafe_get sn (j + 1) in
          charge t e ~src:a ~dst:b msg;
          if lost t ~src:a ~dst:b msg then false else hop (j + 1)
        end
      in
      if hop start then begin
        (* The converged route distance is the path's delay, summed
           head-to-tail by Dijkstra itself — no per-edge recompute. *)
        let delay = Netgraph.Dijkstra.dist r dst in
        let at = Engine.now t.engine +. delay in
        let nhops = last - start in
        if nhops = 1 then
          send_edge1 t ~background ~at ~from:src dst
            (Array.unsafe_get se start)
            msg
        else begin
          let stamped = Array.make (2 * nhops) 0 in
          for j = 0 to nhops - 1 do
            let e = Array.unsafe_get se (start + j) in
            Array.unsafe_set stamped (2 * j) e;
            Array.unsafe_set stamped ((2 * j) + 1) (edge_stamp t e)
          done;
          let slot = slab_alloc t.msgs msg in
          let pslot = slab_alloc t.paths stamped in
          Engine.schedule_fast t.engine ~background ~time:at t.d_hop slot
            ((dst lsl 31) lor src)
            t.node_fails.(dst) pslot 0
        end
      end
    end
  end

let loopback t x msg =
  send_edge1 t ~background:false ~at:(Engine.now t.engine) ~from:x x (-1) msg

let create ?sizeof engine graph ~classify =
  let n = Netgraph.Graph.node_count graph in
  let m = Netgraph.Graph.edge_count graph in
  (* The overlay tables exist before the record so the routes cache can
     close over them: an SPT is always built through the *current*
     liveness, and invalidation notices keep cached entries exact. *)
  let eu = Array.init m (Netgraph.Graph.edge_u graph) in
  let ev = Array.init m (Netgraph.Graph.edge_v graph) in
  let dead_edge = bitset_make m in
  let node_down = Array.make n false in
  let faults_live = ref 0 in
  let edge_ok e =
    (not (bit_get dead_edge e))
    && (not node_down.(eu.(e)))
    && not node_down.(ev.(e))
  in
  let all_ok () = !faults_live = 0 in
  let nop = Engine.dispatch (fun _ _ _ _ _ -> ()) in
  let t =
    {
      engine;
      graph;
      eu;
      ev;
      routes = Routes.compute ~edge_ok ~all_ok graph;
      routes_epoch = 0;
      classify;
      sizeof;
      handlers = Array.make n None;
      data_overhead = 0.0;
      control_overhead = 0.0;
      data_tx = 0;
      control_tx = 0;
      data_bytes = 0;
      control_bytes = 0;
      per_link = Array.make m 0;
      hooks = hookset ();
      loss = None;
      dropped = 0;
      dropped_loss = 0;
      dropped_no_route = 0;
      dropped_link_down = 0;
      dropped_node_down = 0;
      drop_hooks = hookset ();
      dead_edge;
      node_down;
      faults_live;
      link_fails = Array.make m 0;
      node_fails = Array.make n 0;
      topo_hooks = hookset ();
      processing = Array.make n None;
      msgs = slab_create ();
      paths = slab_create ();
      d_edge1 = nop;
      d_hop = nop;
      scratch_e = Array.make (max n 1) 0;
      scratch_n = Array.make (max n 1) 0;
    }
  in
  (* The dispatchers close over [t] once; every fast event shares them. *)
  t.d_edge1 <- Engine.dispatch (run_edge1 t);
  t.d_hop <- Engine.dispatch (run_hop t);
  t

let data_overhead t = t.data_overhead
let control_overhead t = t.control_overhead
let data_transmissions t = t.data_tx
let control_transmissions t = t.control_tx
let data_bytes t = t.data_bytes
let control_bytes t = t.control_bytes

let link_crossings t (a, b) =
  match Netgraph.Graph.edge_id_opt t.graph a b with
  | Some e -> t.per_link.(e)
  | None -> 0

let per_link_crossings t =
  let acc = ref [] in
  for e = Array.length t.per_link - 1 downto 0 do
    if t.per_link.(e) > 0 then acc := ((t.eu.(e), t.ev.(e)), t.per_link.(e)) :: !acc
  done;
  List.sort
    (fun ((a1, b1), _) ((a2, b2), _) ->
      match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
    !acc

let observe t m =
  let set_c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m name) v in
  let set_g name v = Obs.Metrics.set (Obs.Metrics.gauge m name) v in
  set_c "net/data/transmissions" t.data_tx;
  set_c "net/control/transmissions" t.control_tx;
  set_c "net/data/bytes" t.data_bytes;
  set_c "net/control/bytes" t.control_bytes;
  set_c "net/dropped" t.dropped;
  set_c "net/dropped/loss" t.dropped_loss;
  set_c "net/dropped/no_route" t.dropped_no_route;
  set_c "net/dropped/link_down" t.dropped_link_down;
  set_c "net/dropped/node_down" t.dropped_node_down;
  set_c "net/routes_epoch" t.routes_epoch;
  set_c "routes/spt_computed" (Routes.computed t.routes);
  set_c "routes/invalidated" (Routes.invalidated t.routes);
  set_g "net/data/cost" t.data_overhead;
  set_g "net/control/cost" t.control_overhead;
  set_c "net/links_used"
    (Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 t.per_link);
  set_c "net/max_link_crossings" (Array.fold_left max 0 t.per_link)

let on_transmit t h = hook_add t.hooks h
