type event =
  | Link_down of Netgraph.Graph.node * Netgraph.Graph.node
  | Link_up of Netgraph.Graph.node * Netgraph.Graph.node
  | Node_down of Netgraph.Graph.node
  | Node_up of Netgraph.Graph.node

type spec = { at : float; event : event }

type t = {
  mutable link_downs : int;
  mutable link_ups : int;
  mutable node_downs : int;
  mutable node_ups : int;
}

let event_to_string = function
  | Link_down (a, b) -> Printf.sprintf "link-down %d-%d" a b
  | Link_up (a, b) -> Printf.sprintf "link-up %d-%d" a b
  | Node_down x -> Printf.sprintf "node-down %d" x
  | Node_up x -> Printf.sprintf "node-up %d" x

let applied t = t.link_downs + t.link_ups + t.node_downs + t.node_ups

let apply t net ev =
  (match ev with
  | Link_down (a, b) ->
    Netsim.fail_link net a b;
    t.link_downs <- t.link_downs + 1
  | Link_up (a, b) ->
    Netsim.restore_link net a b;
    t.link_ups <- t.link_ups + 1
  | Node_down x ->
    Netsim.fail_node net x;
    t.node_downs <- t.node_downs + 1
  | Node_up x ->
    Netsim.restore_node net x;
    t.node_ups <- t.node_ups + 1)

let install net specs =
  let t = { link_downs = 0; link_ups = 0; node_downs = 0; node_ups = 0 } in
  List.iter
    (fun s ->
      if s.at < 0.0 then invalid_arg "Faults.install: negative event time";
      Engine.schedule_at (Netsim.engine net) ~time:s.at (fun () ->
          apply t net s.event))
    specs;
  t

(* ---------------- Random schedules ---------------- *)

let random_link_failures ~seed ~count ~t0 ~t1 ?restore_after graph =
  if t1 < t0 then invalid_arg "Faults.random_link_failures: t1 < t0";
  if count < 0 then invalid_arg "Faults.random_link_failures: negative count";
  let links = Array.of_list (Netgraph.Graph.links graph) in
  let rng = Scmp_util.Prng.create seed in
  let k = min count (Array.length links) in
  let idxs = Scmp_util.Prng.sample rng k (Array.length links) in
  List.concat_map
    (fun i ->
      let l = links.(i) in
      let u = l.Netgraph.Graph.u and v = l.Netgraph.Graph.v in
      let at = t0 +. Scmp_util.Prng.float rng (t1 -. t0) in
      let down = { at; event = Link_down (u, v) } in
      match restore_after with
      | None -> [ down ]
      | Some d -> [ down; { at = at +. d; event = Link_up (u, v) } ])
    idxs

(* ---------------- CLI parsing ---------------- *)

let parse_restore tail =
  (* "restore@T" *)
  match String.split_on_char '@' tail with
  | [ "restore"; at ] -> float_of_string_opt at
  | _ -> None

let with_restore mk at = function
  | None -> Ok [ { at; event = mk false } ]
  | Some tail -> (
    match parse_restore tail with
    | Some at' when at' >= at ->
      Ok [ { at; event = mk false }; { at = at'; event = mk true } ]
    | Some _ -> Error "restore time precedes failure time"
    | None -> Error "expected :restore@TIME")

let split_restore s =
  match String.index_opt s ':' with
  | None -> (s, None)
  | Some i ->
    (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let parse_link_failure s =
  let main, restore = split_restore s in
  let err = Error (Printf.sprintf "cannot parse %S: expected A-B@TIME[:restore@TIME]" s) in
  match String.split_on_char '@' main with
  | [ ends; at ] -> (
    match (String.split_on_char '-' ends, float_of_string_opt at) with
    | [ a; b ], Some at -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a <> b ->
        with_restore
          (fun up -> if up then Link_up (a, b) else Link_down (a, b))
          at restore
      | _ -> err)
    | _ -> err)
  | _ -> err

let parse_node_failure s =
  let main, restore = split_restore s in
  let err = Error (Printf.sprintf "cannot parse %S: expected NODE@TIME[:restore@TIME]" s) in
  match String.split_on_char '@' main with
  | [ x; at ] -> (
    match (int_of_string_opt x, float_of_string_opt at) with
    | Some x, Some at ->
      with_restore (fun up -> if up then Node_up x else Node_down x) at restore
    | _ -> err)
  | _ -> err

let observe t m =
  let set_c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m name) v in
  set_c "faults/link_down" t.link_downs;
  set_c "faults/link_up" t.link_ups;
  set_c "faults/node_down" t.node_downs;
  set_c "faults/node_up" t.node_ups
