type event =
  | Link_down of Netgraph.Graph.node * Netgraph.Graph.node
  | Link_up of Netgraph.Graph.node * Netgraph.Graph.node
  | Node_down of Netgraph.Graph.node
  | Node_up of Netgraph.Graph.node
  | Partition of Netgraph.Graph.node list
  | Heal of Netgraph.Graph.node list

type spec = { at : float; event : event }

type t = {
  mutable link_downs : int;
  mutable link_ups : int;
  mutable node_downs : int;
  mutable node_ups : int;
  mutable partitions : int;
  mutable heals : int;
}

let side_to_string side =
  String.concat "," (List.map string_of_int side)

let event_to_string = function
  | Link_down (a, b) -> Printf.sprintf "link-down %d-%d" a b
  | Link_up (a, b) -> Printf.sprintf "link-up %d-%d" a b
  | Node_down x -> Printf.sprintf "node-down %d" x
  | Node_up x -> Printf.sprintf "node-up %d" x
  | Partition side -> Printf.sprintf "partition {%s}" (side_to_string side)
  | Heal side -> Printf.sprintf "heal {%s}" (side_to_string side)

let applied t =
  t.link_downs + t.link_ups + t.node_downs + t.node_ups + t.partitions
  + t.heals

(* The cut-set of a bipartition: every base-graph link with exactly one
   endpoint inside [side]. Membership through a dense bool array so the
   scan is O(nodes + links); the result is in the graph's link order,
   which is deterministic (insertion order of the frozen builder). *)
let cut_links graph side =
  let n = Netgraph.Graph.node_count graph in
  let inside = Array.make n false in
  List.iter
    (fun x ->
      if x < 0 || x >= n then invalid_arg "Faults: partition node out of range";
      inside.(x) <- true)
    side;
  List.filter_map
    (fun l ->
      let u = l.Netgraph.Graph.u and v = l.Netgraph.Graph.v in
      if inside.(u) <> inside.(v) then Some (u, v) else None)
    (Netgraph.Graph.links graph)

let apply t net ev =
  match ev with
  | Link_down (a, b) ->
    Netsim.fail_link net a b;
    t.link_downs <- t.link_downs + 1
  | Link_up (a, b) ->
    Netsim.restore_link net a b;
    t.link_ups <- t.link_ups + 1
  | Node_down x ->
    Netsim.fail_node net x;
    t.node_downs <- t.node_downs + 1
  | Node_up x ->
    Netsim.restore_node net x;
    t.node_ups <- t.node_ups + 1
  | Partition side ->
    (* The whole cut-set flips in one atomic batch: in-flight packets
       across it die, and on_topology_change fires once per cut. *)
    Netsim.fail_links net (cut_links (Netsim.graph net) side);
    t.partitions <- t.partitions + 1
  | Heal side ->
    Netsim.restore_links net (cut_links (Netsim.graph net) side);
    t.heals <- t.heals + 1

let install net specs =
  let t =
    { link_downs = 0; link_ups = 0; node_downs = 0; node_ups = 0;
      partitions = 0; heals = 0 }
  in
  List.iter
    (fun s ->
      if s.at < 0.0 then invalid_arg "Faults.install: negative event time";
      Engine.schedule_at (Netsim.engine net) ~time:s.at (fun () ->
          apply t net s.event))
    specs;
  t

(* ---------------- Random schedules ---------------- *)

let random_link_failures ~seed ~count ~t0 ~t1 ?restore_after graph =
  if t1 < t0 then invalid_arg "Faults.random_link_failures: t1 < t0";
  if count < 0 then invalid_arg "Faults.random_link_failures: negative count";
  let links = Array.of_list (Netgraph.Graph.links graph) in
  let rng = Scmp_util.Prng.create seed in
  let k = min count (Array.length links) in
  let idxs = Scmp_util.Prng.sample rng k (Array.length links) in
  List.concat_map
    (fun i ->
      let l = links.(i) in
      let u = l.Netgraph.Graph.u and v = l.Netgraph.Graph.v in
      let at = t0 +. Scmp_util.Prng.float rng (t1 -. t0) in
      let down = { at; event = Link_down (u, v) } in
      match restore_after with
      | None -> [ down ]
      | Some d -> [ down; { at = at +. d; event = Link_up (u, v) } ])
    idxs

let random_partitions ~seed ~count ~t0 ~t1 ?heal_after graph =
  if t1 < t0 then invalid_arg "Faults.random_partitions: t1 < t0";
  if count < 0 then invalid_arg "Faults.random_partitions: negative count";
  let n = Netgraph.Graph.node_count graph in
  if n < 2 then invalid_arg "Faults.random_partitions: graph too small";
  let rng = Scmp_util.Prng.create seed in
  List.concat_map
    (fun _ ->
      (* One side of the bipartition: between 1 and n/2 nodes, so the
         cut is never empty and never the whole node set. *)
      let k = 1 + Scmp_util.Prng.int rng (max 1 (n / 2)) in
      let side = List.sort Int.compare (Scmp_util.Prng.sample rng k n) in
      let at = t0 +. Scmp_util.Prng.float rng (t1 -. t0) in
      let cut = { at; event = Partition side } in
      match heal_after with
      | None -> [ cut ]
      | Some d -> [ cut; { at = at +. d; event = Heal side } ])
    (List.init count (fun i -> i))

(* ---------------- CLI parsing ---------------- *)

let parse_restore tail =
  (* "restore@T" *)
  match String.split_on_char '@' tail with
  | [ "restore"; at ] -> float_of_string_opt at
  | _ -> None

let with_restore mk at = function
  | None -> Ok [ { at; event = mk false } ]
  | Some tail -> (
    match parse_restore tail with
    | Some at' when at' >= at ->
      Ok [ { at; event = mk false }; { at = at'; event = mk true } ]
    | Some _ -> Error "restore time precedes failure time"
    | None -> Error "expected :restore@TIME")

let split_restore s =
  match String.index_opt s ':' with
  | None -> (s, None)
  | Some i ->
    (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let parse_link_failure s =
  let main, restore = split_restore s in
  let err = Error (Printf.sprintf "cannot parse %S: expected A-B@TIME[:restore@TIME]" s) in
  match String.split_on_char '@' main with
  | [ ends; at ] -> (
    match (String.split_on_char '-' ends, float_of_string_opt at) with
    | [ a; b ], Some at -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a <> b ->
        with_restore
          (fun up -> if up then Link_up (a, b) else Link_down (a, b))
          at restore
      | _ -> err)
    | _ -> err)
  | _ -> err

let parse_node_failure s =
  let main, restore = split_restore s in
  let err = Error (Printf.sprintf "cannot parse %S: expected NODE@TIME[:restore@TIME]" s) in
  match String.split_on_char '@' main with
  | [ x; at ] -> (
    match (int_of_string_opt x, float_of_string_opt at) with
    | Some x, Some at ->
      with_restore (fun up -> if up then Node_up x else Node_down x) at restore
    | _ -> err)
  | _ -> err

let parse_heal tail =
  (* "heal@T" *)
  match String.split_on_char '@' tail with
  | [ "heal"; at ] -> float_of_string_opt at
  | _ -> None

let parse_partition s =
  let main, heal = split_restore s in
  let err =
    Error (Printf.sprintf "cannot parse %S: expected A,B,C@TIME[:heal@TIME]" s)
  in
  match String.split_on_char '@' main with
  | [ nodes; at ] -> (
    let side =
      List.map int_of_string_opt (String.split_on_char ',' nodes)
    in
    match (float_of_string_opt at, List.exists (fun x -> x = None) side) with
    | Some at, false -> (
      let side = List.filter_map (fun x -> x) side in
      if side = [] then err
      else
        match heal with
        | None -> Ok [ { at; event = Partition side } ]
        | Some tail -> (
          match parse_heal tail with
          | Some at' when at' >= at ->
            Ok
              [ { at; event = Partition side };
                { at = at'; event = Heal side } ]
          | Some _ -> Error "heal time precedes partition time"
          | None -> Error "expected :heal@TIME"))
    | _ -> err)
  | _ -> err

let observe t m =
  let set_c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m name) v in
  set_c "faults/link_down" t.link_downs;
  set_c "faults/link_up" t.link_ups;
  set_c "faults/node_down" t.node_downs;
  set_c "faults/node_up" t.node_ups;
  set_c "faults/partition" t.partitions;
  set_c "faults/heal" t.heals
