(** A k-server FIFO processing station on the event engine.

    Models computation capacity — in this reproduction, the m-router's
    network processors (§II.B: the m-router "can adopt a multiprocessor
    or a cluster computer architecture" because its tasks "can be
    performed in parallel"). Jobs queue in arrival order; up to
    [servers] of them are in service at once; a job's completion
    callback runs when its service time elapses.

    The station keeps the aggregate statistics capacity studies need:
    completions, total queueing delay, and the busy/queued instantaneous
    state. *)

type t

val create : Engine.t -> servers:int -> t
(** @raise Invalid_argument if [servers < 1]. *)

val servers : t -> int

val submit : t -> service_time:float -> (unit -> unit) -> unit
(** Enqueue a job; its callback fires [service_time] after a server
    picks it up (immediately if one is idle).
    @raise Invalid_argument on negative service time. *)

val busy : t -> int
(** Jobs currently in service. *)

val queue_length : t -> int
(** Jobs waiting for a server. *)

val completed : t -> int

val total_queueing_delay : t -> float
(** Sum over completed-or-started jobs of (service start - arrival);
    divide by {!completed} for the mean wait. *)

val max_queue_length : t -> int
(** High-water mark of the waiting queue. *)

(** {2 Observability} *)

val on_wait : t -> (float -> unit) -> unit
(** Install a hook called with each job's queueing delay the moment it
    enters service (replaces any previous hook). *)

val instrument : t -> Obs.Metrics.t -> prefix:string -> unit
(** Record every subsequent job's queueing delay into the histogram
    [<prefix>/wait_s] of the registry (installs an {!on_wait} hook). *)

val observe : t -> Obs.Metrics.t -> prefix:string -> unit
(** Publish the aggregate statistics: [<prefix>/completed],
    [<prefix>/max_queue], [<prefix>/total_wait_s]. Idempotent. *)

val sample_queue_depth : t -> Obs.Series.t -> interval:float -> until:float -> unit
(** Sample the waiting-queue depth into a sim-time series every
    [interval] seconds up to [until] (background events; they do not
    keep the run alive). *)
