(** Discrete-event simulation engine.

    A time-ordered queue of events over a monotone calendar queue
    ({!Scmp_util.Calendar_queue}). Events scheduled for the same
    instant execute in scheduling order (FIFO), which makes whole-run
    behaviour deterministic — a property the reproduction relies on for
    seed-stable experiment output.

    Events come in three shapes: a general thunk ({!schedule} /
    {!schedule_at}), a periodic task ({!every}) whose single record is
    re-enqueued after each firing, and a closure-free fast path
    ({!schedule_fast}) that carries five immediate ints to a
    {!dispatch} handler registered once per event family — the shape
    the packet-delivery hot path uses to avoid allocating a thunk per
    simulated packet. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time; [0.] before the first event runs. *)

val schedule : t -> ?background:bool -> delay:float -> (unit -> unit) -> unit
(** Enqueue an event [delay] after the current time. [background]
    events (state-expiry housekeeping and the like) execute in time
    order like any other but do not keep {!run} alive — see {!run}.
    @raise Invalid_argument on negative delay. *)

val schedule_at : t -> ?background:bool -> time:float -> (unit -> unit) -> unit
(** Enqueue at an absolute time, not before the current time.
    @raise Invalid_argument if [time < now t]. *)

val every :
  t -> interval:float -> ?until:float -> ?background:bool -> (unit -> unit) -> unit
(** Recurring event starting one [interval] from now, stopping after
    [until] (absolute, inclusive) if given. The window gates every
    firing including the first: if [now t +. interval > until] the
    task never fires. The whole recurrence is one event record,
    re-enqueued after each firing — N firings keep O(1) live records.
    [background] events (e.g. periodic IGMP queries) do not keep
    {!run} alive — see {!run}.
    @raise Invalid_argument on non-positive interval. *)

(** {2 Closure-free fast path} *)

type dispatch
(** A handler for a family of fast events — registered once (closing
    over whatever environment the family needs), then shared by every
    event of the family. *)

val dispatch : (int -> int -> int -> int -> int -> unit) -> dispatch
(** Make a dispatch from a 5-int handler. The meaning of the ints is
    the family's private contract. *)

val schedule_fast :
  t ->
  ?background:bool ->
  time:float ->
  dispatch ->
  int -> int -> int -> int -> int ->
  unit
(** [schedule_fast t ~time d a b c x y] enqueues an event that runs
    as [d a b c x y] — same ordering and background semantics as
    {!schedule_at}, but the event is a flat record of immediates: no
    closure is allocated per event.
    @raise Invalid_argument if [time < now t]. *)

val pending : t -> int
(** Events currently queued. *)

val pending_foreground : t -> int
(** Non-background events currently queued. *)

(** {2 Observability} *)

val events_executed : t -> int
(** Events executed since creation. *)

val heap_high_water : t -> int
(** Largest queue length ever reached — the engine's memory
    high-water mark. *)

val observe : t -> Obs.Metrics.t -> unit
(** Publish both counters ([engine/events_executed],
    [engine/heap_high_water]) into a metric registry. Idempotent. *)

val run : ?until:float -> t -> unit
(** Without [until]: execute events in time order until no foreground
    event remains (quiescence — periodic background work alone does not
    keep the run alive). With [until]: execute every event, background
    included, scheduled up to [until]; later events remain queued and
    the clock settles at [until]. Each iteration is a single
    locate-and-pop on the calendar queue — no peek-then-pop double
    search. *)

val step : t -> bool
(** Execute exactly the next event; [false] if none. *)
