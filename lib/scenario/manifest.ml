(* Declarative scenario manifests: checked-in JSON documents that name
   a full comparison sweep — drivers, topologies, grid axes and the
   perturbation program — so an experiment is data reviewed in the
   repo, not a shell incantation. Parsing is strict (unknown keys are
   errors, every fault program line is validated against the CLI
   parsers at load) and printing is canonical, so parse -> print ->
   parse is the identity on the typed form. *)

let schema = "scmp-scenario/1"

type loss = {
  rate : float;
  seed : int;
  only : Eventsim.Netsim.pkt_class option;
}

type t = {
  name : string;
  drivers : string list;
  topos : Exec.Sweep.topo list;
  group_sizes : int list;
  seeds : int list;
  packets : int;
  master_seed : int;
  loss : loss option;
  link_failures : string list;
  node_failures : string list;
  partitions : string list;
  random_link_failures : Exec.Sweep.random_failures option;
  churn : Exec.Sweep.churn_spec option;
  check : bool;
}

let ( let* ) r f = Result.bind r f

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

(* ---- readers over Obs.Json.t ---- *)

let field_error key what = Error (Printf.sprintf "field %S: expected %s" key what)

let get_string key = function
  | Obs.Json.String s -> Ok s
  | _ -> field_error key "a string"

let get_int key = function
  | Obs.Json.Int i -> Ok i
  | _ -> field_error key "an integer"

let get_float key = function
  | Obs.Json.Float f -> Ok f
  | Obs.Json.Int i -> Ok (float_of_int i)
  | _ -> field_error key "a number"

let get_bool key = function
  | Obs.Json.Bool b -> Ok b
  | _ -> field_error key "a boolean"

let get_list key f = function
  | Obs.Json.List xs -> collect (f key) xs
  | _ -> field_error key "a list"

let get_obj key = function
  | Obs.Json.Obj fields -> Ok fields
  | _ -> field_error key "an object"

let opt_field fields key f =
  match List.assoc_opt key fields with
  | None -> Ok None
  | Some v ->
    let* x = f key v in
    Ok (Some x)

let req_field fields key f =
  match List.assoc_opt key fields with
  | None -> Error (Printf.sprintf "missing required field %S" key)
  | Some v -> f key v

let with_default d = function Some x -> x | None -> d

let check_known_keys fields known =
  let unknown =
    List.filter_map
      (fun (k, _) -> if List.mem k known then None else Some k)
      fields
  in
  match unknown with
  | [] -> Ok ()
  | ks ->
    Error
      (Printf.sprintf "unknown manifest field(s): %s (known: %s)"
         (String.concat ", " ks) (String.concat ", " known))

(* ---- sub-objects ---- *)

let pkt_class_of_string key = function
  | "data" -> Ok (Some `Data)
  | "control" -> Ok (Some `Control)
  | "all" -> Ok None
  | s -> field_error key (Printf.sprintf "data, control or all (got %S)" s)

let loss_of_json key v =
  let* fields = get_obj key v in
  let* () = check_known_keys fields [ "rate"; "seed"; "class" ] in
  let* rate = req_field fields "rate" get_float in
  let* seed = req_field fields "seed" get_int in
  let* only =
    match List.assoc_opt "class" fields with
    | None -> Ok None
    | Some v ->
      let* s = get_string "class" v in
      pkt_class_of_string "class" s
  in
  if rate < 0.0 || rate >= 1.0 then
    Error "field \"loss.rate\": must satisfy 0 <= rate < 1"
  else Ok { rate; seed; only }

let random_failures_of_json key v =
  let* fields = get_obj key v in
  let* () = check_known_keys fields [ "seed"; "count"; "restore_after" ] in
  let* rf_seed = req_field fields "seed" get_int in
  let* rf_count = req_field fields "count" get_int in
  let* rf_restore_after = opt_field fields "restore_after" get_float in
  if rf_count < 1 then Error "field \"random_link_failures.count\": must be >= 1"
  else Ok { Exec.Sweep.rf_seed; rf_count; rf_restore_after }

let churn_of_json key v =
  let* fields = get_obj key v in
  let* () = check_known_keys fields [ "interarrival"; "holding"; "seed" ] in
  let* cs_interarrival = req_field fields "interarrival" get_float in
  let* cs_holding = req_field fields "holding" get_float in
  let* cs_seed = opt_field fields "seed" get_int in
  if cs_interarrival <= 0.0 || cs_holding <= 0.0 then
    Error "field \"churn\": interarrival and holding must be positive"
  else Ok { Exec.Sweep.cs_interarrival; cs_holding; cs_seed }

let topo_of_json key v =
  let* s = get_string key v in
  Exec.Sweep.topo_of_string s

let driver_of_json key v =
  let* s = get_string key v in
  let* _ = Protocols.Driver.find s in
  Ok s

let fault_line parse what key v =
  let* s = get_string key v in
  match parse s with
  | Ok _ -> Ok s
  | Error e -> Error (Printf.sprintf "field %S: bad %s %S: %s" key what s e)

(* ---- the manifest itself ---- *)

let known =
  [
    "schema"; "name"; "drivers"; "topologies"; "group_sizes"; "seeds";
    "packets"; "master_seed"; "loss"; "link_failures"; "node_failures";
    "partitions"; "random_link_failures"; "churn"; "check";
  ]

let of_json j =
  let* fields = get_obj "manifest" j in
  let* () = check_known_keys fields known in
  let* s = req_field fields "schema" get_string in
  if s <> schema then
    Error (Printf.sprintf "schema %S is not %S" s schema)
  else
    let* name = req_field fields "name" get_string in
    let* drivers = req_field fields "drivers" (fun k v -> get_list k driver_of_json v) in
    let* topos =
      req_field fields "topologies" (fun k v -> get_list k topo_of_json v)
    in
    let* group_sizes = opt_field fields "group_sizes" (fun k v -> get_list k get_int v) in
    let* seeds = opt_field fields "seeds" (fun k v -> get_list k get_int v) in
    let* packets = opt_field fields "packets" get_int in
    let* master_seed = opt_field fields "master_seed" get_int in
    let* loss = opt_field fields "loss" loss_of_json in
    let* link_failures =
      opt_field fields "link_failures" (fun k v ->
          get_list k (fault_line Eventsim.Faults.parse_link_failure "link failure") v)
    in
    let* node_failures =
      opt_field fields "node_failures" (fun k v ->
          get_list k (fault_line Eventsim.Faults.parse_node_failure "node failure") v)
    in
    let* partitions =
      opt_field fields "partitions" (fun k v ->
          get_list k (fault_line Eventsim.Faults.parse_partition "partition") v)
    in
    let* random_link_failures =
      opt_field fields "random_link_failures" random_failures_of_json
    in
    let* churn = opt_field fields "churn" churn_of_json in
    let* check = opt_field fields "check" get_bool in
    let m =
      {
        name;
        drivers;
        topos;
        group_sizes = with_default [ 16 ] group_sizes;
        seeds = with_default [ 1 ] seeds;
        packets = with_default 30 packets;
        master_seed = with_default 1 master_seed;
        loss;
        link_failures = with_default [] link_failures;
        node_failures = with_default [] node_failures;
        partitions = with_default [] partitions;
        random_link_failures;
        churn;
        check = with_default false check;
      }
    in
    if m.drivers = [] then Error "field \"drivers\": must be non-empty"
    else if m.topos = [] then Error "field \"topologies\": must be non-empty"
    else if List.exists (fun k -> k < 1) m.group_sizes || m.group_sizes = [] then
      Error "field \"group_sizes\": must be a non-empty list of positive sizes"
    else if m.seeds = [] then Error "field \"seeds\": must be non-empty"
    else if m.packets < 1 then Error "field \"packets\": must be >= 1"
    else Ok m

let of_string s =
  match Obs.Json.of_string s with
  | Error e -> Error (Printf.sprintf "manifest is not valid JSON: %s" e)
  | Ok j -> of_json j

let load ~path =
  match
    In_channel.with_open_text path (fun ic -> In_channel.input_all ic)
  with
  | s -> of_string s
  | exception Sys_error e -> Error e

(* ---- canonical printing ---- *)

let to_json m =
  let strings xs = Obs.Json.List (List.map (fun s -> Obs.Json.String s) xs) in
  let ints xs = Obs.Json.List (List.map (fun i -> Obs.Json.Int i) xs) in
  let base =
    [
      ("schema", Obs.Json.String schema);
      ("name", Obs.Json.String m.name);
      ("drivers", strings m.drivers);
      ("topologies", strings (List.map Exec.Sweep.topo_to_string m.topos));
      ("group_sizes", ints m.group_sizes);
      ("seeds", ints m.seeds);
      ("packets", Obs.Json.Int m.packets);
      ("master_seed", Obs.Json.Int m.master_seed);
    ]
  in
  let optional =
    List.concat
      [
        (match m.loss with
        | None -> []
        | Some l ->
          [
            ( "loss",
              Obs.Json.Obj
                (( "rate", Obs.Json.Float l.rate )
                 :: ("seed", Obs.Json.Int l.seed)
                 :: (match l.only with
                    | None -> []
                    | Some `Data -> [ ("class", Obs.Json.String "data") ]
                    | Some `Control -> [ ("class", Obs.Json.String "control") ]))
            );
          ]);
        (if m.link_failures = [] then []
         else [ ("link_failures", strings m.link_failures) ]);
        (if m.node_failures = [] then []
         else [ ("node_failures", strings m.node_failures) ]);
        (if m.partitions = [] then []
         else [ ("partitions", strings m.partitions) ]);
        (match m.random_link_failures with
        | None -> []
        | Some rf ->
          [
            ( "random_link_failures",
              Obs.Json.Obj
                (("seed", Obs.Json.Int rf.Exec.Sweep.rf_seed)
                 :: ("count", Obs.Json.Int rf.rf_count)
                 :: (match rf.rf_restore_after with
                    | None -> []
                    | Some d -> [ ("restore_after", Obs.Json.Float d) ])) );
          ]);
        (match m.churn with
        | None -> []
        | Some c ->
          [
            ( "churn",
              Obs.Json.Obj
                (("interarrival", Obs.Json.Float c.Exec.Sweep.cs_interarrival)
                 :: ("holding", Obs.Json.Float c.cs_holding)
                 :: (match c.cs_seed with
                    | None -> []
                    | Some s -> [ ("seed", Obs.Json.Int s) ])) );
          ]);
        (if m.check then [ ("check", Obs.Json.Bool true) ] else []);
      ]
  in
  Obs.Json.Obj (base @ optional)

let to_string ?(pretty = true) m = Obs.Json.to_string ~pretty (to_json m)

(* ---- lowering to an executable sweep ---- *)

let to_sweep m =
  let* link = collect Eventsim.Faults.parse_link_failure m.link_failures in
  let* node = collect Eventsim.Faults.parse_node_failure m.node_failures in
  let* part = collect Eventsim.Faults.parse_partition m.partitions in
  let faults = List.concat (link @ node @ part) in
  Ok
    (Exec.Sweep.make ~packets:m.packets ~master_seed:m.master_seed
       ?loss:(Option.map (fun l -> (l.rate, l.seed)) m.loss)
       ?loss_class:(Option.join (Option.map (fun l -> l.only) m.loss))
       ~faults
       ?random_link_failures:m.random_link_failures ?churn:m.churn
       ~drivers:m.drivers ~topos:m.topos ~group_sizes:m.group_sizes
       ~seeds:m.seeds ())
