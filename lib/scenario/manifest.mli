(** Declarative scenario manifests ([scmp-scenario/1]).

    A manifest is a checked-in JSON document naming a full comparison
    sweep — drivers, topologies, grid axes, and the perturbation
    program (loss, scripted faults, random link failures, churn) — so
    an experiment is reviewable data, not a shell incantation.

    Parsing is strict: unknown fields are errors, driver names are
    validated against the {!Protocols.Driver} registry, and every
    fault program line is checked against the {!Eventsim.Faults}
    CLI parsers at load time. Printing is canonical (fixed field
    order, absent optionals omitted), so parse -> print -> parse is
    the identity on the typed form. *)

val schema : string
(** ["scmp-scenario/1"]. *)

type loss = {
  rate : float;  (** Bernoulli drop probability, [0 <= rate < 1]. *)
  seed : int;
  only : Eventsim.Netsim.pkt_class option;
      (** Restrict loss to one class; [None] drops both. *)
}

type t = {
  name : string;
  drivers : string list;  (** Validated registry names. *)
  topos : Exec.Sweep.topo list;
  group_sizes : int list;
  seeds : int list;
  packets : int;
  master_seed : int;
  loss : loss option;
  link_failures : string list;
      (** CLI syntax [A-B\@T\[:restore\@T'\]], validated at load. *)
  node_failures : string list;  (** [N\@T\[:restore\@T'\]]. *)
  partitions : string list;  (** [a,b,c\@T\[:heal\@T'\]]. *)
  random_link_failures : Exec.Sweep.random_failures option;
  churn : Exec.Sweep.churn_spec option;
  check : bool;  (** Run the protocol invariant verifier in each cell. *)
}

val of_json : Obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val load : path:string -> (t, string) result
(** Read and parse a manifest file; I/O failures become [Error]. *)

val to_json : t -> Obs.Json.t
val to_string : ?pretty:bool -> t -> string
(** Canonical form (default pretty): fixed field order, absent
    optional sections omitted. *)

val to_sweep : t -> (Exec.Sweep.spec, string) result
(** Lower to an executable sweep spec, parsing the stored fault
    program lines. *)
