(* Noise-aware A/B comparison of two scmp-report/1 documents.

   Absolute thresholds on timing metrics rot: the host's speed drifts
   by tens of percent between runs, so a gate like "dcdm < 250000 ns"
   is simultaneously too loose (it hides a 2x regression on a fast
   host) and too brittle (it fails an unchanged tree on a slow one).
   The A/B form compares a fresh report against a committed baseline
   with a per-metric tolerance band instead: a metric regresses only
   when its paired ratio leaves the band in the direction the rule
   calls worse. Deterministic counters get a zero-width band, wall
   measurements get an informational rule, and everything else falls
   through to a catch-all. *)

type direction = Higher_worse | Lower_worse | Both | Info

type rule = { pattern : string; direction : direction; tol : float }

type status = Within | Regressed | Improved | Informational | Added | Missing

type delta = {
  metric : string;
  old_value : float option;
  new_value : float option;
  rel : float option;
  status : status;
}

type outcome = {
  deltas : delta list;
  compared : int;
  within : int;
  regressed : int;
  improved : int;
  informational : int;
  missing : int;
  added : int;
}

let passed o = o.regressed = 0 && o.missing = 0

let catch_all = { pattern = "*"; direction = Both; tol = 0.10 }

let default_rules = [ catch_all ]

(* The bench profile encodes the judgement the old shell gates made by
   hand: the interleaved-batch speedup ratio is the only drift-immune
   timing metric (keep it tight), raw ns_per_run figures are compared
   loosely enough to survive host drift while still catching
   order-of-magnitude regressions, per-second throughputs and wall
   seconds are informational, and simulated event/delivery counts are
   deterministic so any change at all is a regression. *)
let bench_rules =
  [
    { pattern = "micro/dijkstra-100-speedup/x"; direction = Lower_worse; tol = 0.15 };
    { pattern = "micro/engine-churn-speedup/x"; direction = Lower_worse; tol = 0.15 };
    { pattern = "micro/*/ns_per_run"; direction = Higher_worse; tol = 1.5 };
    { pattern = "e2e/*/wall_s"; direction = Info; tol = 0.0 };
    (* The event-kernel's steady-state throughput is measured best-of-k
       over a warmed scenario, so unlike single-shot wall figures it is
       stable enough to band: losing almost half of it means the kernel
       regressed, not that the host drifted. More specific than — and
       therefore ahead of — the informational per-second catch-all. *)
    { pattern = "e2e/scmp/events_per_s"; direction = Lower_worse; tol = 0.40 };
    { pattern = "e2e/*_per_s"; direction = Info; tol = 0.0 };
    { pattern = "e2e/*/deliveries"; direction = Both; tol = 0.0 };
    { pattern = "e2e/*/events"; direction = Both; tol = 0.0 };
    catch_all;
  ]

let profile_of_string = function
  | "default" -> Ok default_rules
  | "bench" -> Ok bench_rules
  | s -> Error (Printf.sprintf "unknown ab profile %S (known: default, bench)" s)

(* Full-string glob where '*' matches any (possibly empty) run. *)
let glob_match pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pattern.[pi] with
      | '*' ->
        let rec try_at k = k <= ns && (go (pi + 1) k || try_at (k + 1)) in
        try_at si
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let rule_for rules metric =
  match List.find_opt (fun r -> glob_match r.pattern metric) rules with
  | Some r -> r
  | None -> catch_all

(* ---- report access ---- *)

let metrics_of_report j =
  match Obs.Json.mem "schema" j with
  | Some (Obs.Json.String s) when s = Obs.Report.schema -> (
    match Obs.Json.mem "metrics" j with
    | Some (Obs.Json.Obj fields) ->
      Ok
        (List.filter_map
           (fun (k, v) ->
             match v with
             | Obs.Json.Int i -> Some (k, float_of_int i)
             | Obs.Json.Float f -> Some (k, f)
             | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.String _
             | Obs.Json.List _ | Obs.Json.Obj _ ->
               None)
           fields)
    | Some _ | None -> Error "report has no metrics object")
  | Some (Obs.Json.String s) ->
    Error (Printf.sprintf "not a %s document (schema %S)" Obs.Report.schema s)
  | Some _ | None -> Error "missing schema field"

let metric_value j key =
  match metrics_of_report j with
  | Error e -> Error e
  | Ok metrics -> (
    match List.assoc_opt key metrics with
    | Some v -> Ok v
    | None ->
      Error
        (Printf.sprintf "metric %S not present in report (%d metrics)" key
           (List.length metrics)))

(* ---- comparison ---- *)

let classify rule ~ov ~nv =
  let rel = (nv -. ov) /. Float.max (Float.abs ov) 1e-9 in
  let status =
    match rule.direction with
    | Info -> Informational
    | Higher_worse ->
      if rel > rule.tol then Regressed
      else if rel < -.rule.tol then Improved
      else Within
    | Lower_worse ->
      if rel < -.rule.tol then Regressed
      else if rel > rule.tol then Improved
      else Within
    | Both -> if Float.abs rel > rule.tol then Regressed else Within
  in
  (rel, status)

let compare_metrics ?(rules = default_rules) ~old_metrics ~new_metrics () =
  let names =
    List.map fst old_metrics @ List.map fst new_metrics
    |> List.sort_uniq String.compare
  in
  let deltas =
    List.map
      (fun metric ->
        let ov = List.assoc_opt metric old_metrics in
        let nv = List.assoc_opt metric new_metrics in
        match (ov, nv) with
        | Some ov, Some nv ->
          let rel, status = classify (rule_for rules metric) ~ov ~nv in
          {
            metric;
            old_value = Some ov;
            new_value = Some nv;
            rel = Some rel;
            status;
          }
        | Some ov, None ->
          (* A metric that vanished is a loud failure: a silently
             renamed key must never let a gate pass by matching
             nothing. *)
          { metric; old_value = Some ov; new_value = None; rel = None;
            status = Missing }
        | None, Some nv ->
          { metric; old_value = None; new_value = Some nv; rel = None;
            status = Added }
        | None, None -> assert false)
      names
  in
  let count st = List.length (List.filter (fun d -> d.status = st) deltas) in
  {
    deltas;
    compared =
      List.length
        (List.filter (fun d -> d.old_value <> None && d.new_value <> None)
           deltas);
    within = count Within;
    regressed = count Regressed;
    improved = count Improved;
    informational = count Informational;
    missing = count Missing;
    added = count Added;
  }

let compare_reports ?rules ~old_json ~new_json () =
  match (metrics_of_report old_json, metrics_of_report new_json) with
  | Error e, _ -> Error (Printf.sprintf "old report: %s" e)
  | _, Error e -> Error (Printf.sprintf "new report: %s" e)
  | Ok old_metrics, Ok new_metrics ->
    Ok (compare_metrics ?rules ~old_metrics ~new_metrics ())

(* ---- scmp-ab/1 serialization ---- *)

let schema = "scmp-ab/1"

let status_label = function
  | Within -> "within"
  | Regressed -> "regressed"
  | Improved -> "improved"
  | Informational -> "info"
  | Added -> "added"
  | Missing -> "missing"

let to_json ~old_name ~new_name o =
  let fnum = function
    | Some v -> Obs.Json.Float v
    | None -> Obs.Json.Null
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("old", Obs.Json.String old_name);
      ("new", Obs.Json.String new_name);
      ( "summary",
        Obs.Json.Obj
          [
            ("compared", Obs.Json.Int o.compared);
            ("within", Obs.Json.Int o.within);
            ("regressed", Obs.Json.Int o.regressed);
            ("improved", Obs.Json.Int o.improved);
            ("info", Obs.Json.Int o.informational);
            ("missing", Obs.Json.Int o.missing);
            ("added", Obs.Json.Int o.added);
          ] );
      ("verdict", Obs.Json.String (if passed o then "pass" else "fail"));
      ( "deltas",
        Obs.Json.List
          (List.map
             (fun d ->
               Obs.Json.Obj
                 [
                   ("metric", Obs.Json.String d.metric);
                   ("old", fnum d.old_value);
                   ("new", fnum d.new_value);
                   ("rel", fnum d.rel);
                   ("status", Obs.Json.String (status_label d.status));
                 ])
             o.deltas) );
    ]
