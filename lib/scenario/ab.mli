(** Noise-aware A/B comparison of two [scmp-report/1] documents.

    Replaces absolute shell-side thresholds (which drift with host
    speed) by a paired comparison: each metric present in both reports
    gets a relative delta [(new - old) / |old|], judged against a
    per-metric tolerance band selected by the first matching glob
    rule. A metric present in the old report but absent from the new
    one is a loud failure — a renamed key must never let a gate pass
    by matching nothing. The outcome serializes to the stable
    [scmp-ab/1] schema. *)

type direction =
  | Higher_worse  (** Regression when the value grows past the band. *)
  | Lower_worse  (** Regression when the value shrinks past the band. *)
  | Both  (** Any departure from the band is a regression. *)
  | Info  (** Never gates — reported for context only. *)

type rule = {
  pattern : string;  (** Full-string glob; ['*'] matches any run. *)
  direction : direction;
  tol : float;  (** Relative tolerance band half-width. *)
}

type status = Within | Regressed | Improved | Informational | Added | Missing

type delta = {
  metric : string;
  old_value : float option;
  new_value : float option;
  rel : float option;  (** [(new - old) / max |old| eps]; absent unless paired. *)
  status : status;
}

type outcome = {
  deltas : delta list;  (** Sorted by metric name. *)
  compared : int;
  within : int;
  regressed : int;
  improved : int;
  informational : int;
  missing : int;
  added : int;
}

val passed : outcome -> bool
(** No regressions and no missing metrics. *)

val default_rules : rule list
(** A single catch-all: any metric moving more than 10% either way
    regresses. *)

val bench_rules : rule list
(** The profile for gating [BENCH.json]: tight band on the
    drift-immune speedup ratio, loose band on raw ns figures,
    informational wall/throughput numbers, exact match on
    deterministic simulation counts. *)

val profile_of_string : string -> (rule list, string) result
(** ["default"] or ["bench"]. *)

val glob_match : string -> string -> bool
(** [glob_match pattern s] — full-string match where ['*'] matches any
    possibly-empty substring. *)

val metrics_of_report : Obs.Json.t -> ((string * float) list, string) result
(** Extract the numeric metrics of a parsed [scmp-report/1] document;
    errors on a wrong or missing schema tag. *)

val metric_value : Obs.Json.t -> string -> (float, string) result
(** Look up one metric by key; the error names the missing key so a
    gate can never silently match nothing. *)

val compare_metrics :
  ?rules:rule list ->
  old_metrics:(string * float) list ->
  new_metrics:(string * float) list ->
  unit ->
  outcome

val compare_reports :
  ?rules:rule list -> old_json:Obs.Json.t -> new_json:Obs.Json.t -> unit ->
  (outcome, string) result
(** Validate both schemas, extract metrics, and compare. *)

val schema : string
(** ["scmp-ab/1"]. *)

val status_label : status -> string

val to_json : old_name:string -> new_name:string -> outcome -> Obs.Json.t
(** Serialize to the [scmp-ab/1] document shape: schema, the two
    input names, a summary object, a pass/fail verdict and the full
    per-metric delta list. *)
