(* Protocol-comparison workloads: figs 8/9, placement, PIM-SM detail,
   and the routing-layer benchmark. *)

open Bench_util

let fig8 ~seeds () =
  section "Fig 8 — data overhead and protocol overhead vs group size";
  pr "1 source, 1 pkt/s, 30 s; averaged over %d seeds (link-cost units)\n" seeds;
  protocol_figure ~title:"Fig 8(a-c) data overhead" ~seeds
    ~pick:(fun r -> r.Protocols.Runner.data_overhead)
    ~decimals:0 ();
  protocol_figure ~title:"Fig 8(d-f) protocol overhead" ~seeds
    ~pick:(fun r -> r.Protocols.Runner.protocol_overhead)
    ~decimals:0 ();
  protocol_figure ~title:"Fig 8(e,f) log10(protocol overhead)" ~seeds
    ~pick:(fun r -> log10 (Float.max 1.0 r.Protocols.Runner.protocol_overhead))
    ~decimals:2 ()

let fig9 ~seeds () =
  section "Fig 9 — maximum end-to-end delay vs group size (seconds)";
  protocol_figure ~title:"Fig 9 maximum end-to-end delay" ~seeds
    ~pick:(fun r -> r.Protocols.Runner.max_delay)
    ~decimals:4 ()

(* ------------------------------------------------------------------ *)
(* m-router placement study (§IV.A rules). *)

let placement ~seeds () =
  section "m-router placement (§IV.A rules 1-3 vs random)";
  let tab =
    T.create
      [
        T.column ~align:T.Left "placement";
        T.column "mean tree cost";
        T.column "vs rule 1";
      ]
  in
  let spec = Topology.Waxman.generate ~seed:17 ~n:100 () in
  let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
  let score candidate =
    Scmp.Placement.evaluate apsp ~candidate ~bound:Mtree.Bound.Moderate
      ~group_size:20 ~trials:(10 * seeds) ~seed:3
  in
  let rule1 = score (Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay) in
  List.iter
    (fun rule ->
      let s = score (Scmp.Placement.pick apsp rule) in
      T.add_row tab
        [
          Scmp.Placement.rule_name rule;
          Printf.sprintf "%.0f" s;
          Printf.sprintf "%+.1f%%" (100.0 *. ((s /. rule1) -. 1.0));
        ])
    Scmp.Placement.all_rules;
  let rng = Scmp_util.Prng.create 7 in
  let rand_acc = Scmp_util.Stats.create () in
  for _ = 1 to 10 do
    Scmp_util.Stats.add rand_acc (score (Scmp_util.Prng.int rng 100))
  done;
  let s = Scmp_util.Stats.mean rand_acc in
  T.add_row tab
    [
      "random (mean of 10)";
      Printf.sprintf "%.0f" s;
      Printf.sprintf "%+.1f%%" (100.0 *. ((s /. rule1) -. 1.0));
    ];
  print_table tab


(* ------------------------------------------------------------------ *)
(* Extension baseline: PIM-SM with SPT switchover vs the paper's
   shared-tree protocols. First packets ride the unidirectional RP tree
   (register detour); the switchover buys SPT delay afterwards. *)

let pimsm () =
  section "extension — PIM-SM with SPT switchover";
  let spec = Topology.Flat_random.generate ~seed:4 ~n:50 ~avg_degree:3.0 in
  let g0 = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g0 in
  let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let rng = Scmp_util.Prng.create 41 in
  let members =
    Scmp_util.Prng.sample rng 12 50 |> List.filter (fun x -> x <> center)
  in
  (* an off-tree source maximizes the register/encap contrast *)
  let source =
    List.find (fun x -> (not (List.mem x members)) && x <> center)
      (List.init 50 Fun.id)
  in
  let scale = 3e-6 in
  let run_case name instantiate =
    let g =
      Netgraph.Graph.map_links g0 ~f:(fun l ->
          (l.Netgraph.Graph.delay *. scale, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let delivery = Protocols.Delivery.create e in
    let send = instantiate e net delivery in
    for seq = 0 to 19 do
      let at = 10.0 +. float_of_int seq in
      Eventsim.Engine.schedule_at e ~time:at (fun () ->
          Protocols.Delivery.expect delivery ~seq ~members ~sent_at:at;
          send ~seq)
    done;
    Eventsim.Engine.run e;
    let delays = Protocols.Delivery.delays delivery in
    let dmax = List.fold_left Float.max 0.0 delays in
    let dmin = List.fold_left Float.min infinity delays in
    (name, dmax, dmin,
     Eventsim.Netsim.data_overhead net /. 20.0,
     Protocols.Delivery.missed delivery + Protocols.Delivery.duplicates delivery)
  in
  let join_all e join =
    List.iteri
      (fun i m ->
        Eventsim.Engine.schedule_at e ~time:(0.1 +. (0.2 *. float_of_int i))
          (fun () -> join m))
      members
  in
  let cases =
    [
      run_case "PIM-SM (switchover)" (fun e net delivery ->
          let p = Protocols.Pim_sm.create ~delivery net ~rp:center () in
          join_all e (fun m -> Protocols.Pim_sm.host_join p ~group:1 m);
          fun ~seq -> Protocols.Pim_sm.send_data p ~group:1 ~src:source ~seq);
      run_case "PIM-SM (no switchover)" (fun e net delivery ->
          let p =
            Protocols.Pim_sm.create ~delivery ~spt_switchover:false net ~rp:center ()
          in
          join_all e (fun m -> Protocols.Pim_sm.host_join p ~group:1 m);
          fun ~seq -> Protocols.Pim_sm.send_data p ~group:1 ~src:source ~seq);
      run_case "CBT" (fun e net delivery ->
          let p = Protocols.Cbt.create ~delivery net ~core:center () in
          join_all e (fun m -> Protocols.Cbt.host_join p ~group:1 m);
          fun ~seq -> Protocols.Cbt.send_data p ~group:1 ~src:source ~seq);
      run_case "SCMP" (fun e net delivery ->
          let p = Protocols.Scmp_proto.create ~delivery net ~mrouter:center () in
          join_all e (fun m -> Protocols.Scmp_proto.host_join p ~group:1 m);
          fun ~seq -> Protocols.Scmp_proto.send_data p ~group:1 ~src:source ~seq);
    ]
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "protocol";
        T.column "first-pkt max delay (ms)";
        T.column "steady min delay (ms)";
        T.column "data overhead/pkt";
        T.column "anomalies";
      ]
  in
  List.iter
    (fun (name, dmax, dmin, per_pkt, bad) ->
      T.add_row tab
        [
          name;
          Printf.sprintf "%.2f" (1000.0 *. dmax);
          Printf.sprintf "%.2f" (1000.0 *. dmin);
          Printf.sprintf "%.0f" per_pkt;
          string_of_int bad;
        ])
    cases;
  print_table
    ~title:"50-node random (deg 3), 12 members, off-tree source, 20 pkts at 1/s"
    tab

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the core algorithms (best-of-k batches), plus
   one end-to-end runner throughput measurement. With --json PATH the
   results are also written as a scmp-report/1 document (BENCH.json —
   the perf baseline future PRs diff against). All numbers here are
   wall-clock by nature, so the report flags every metric [wallclock]. *)

(* ------------------------------------------------------------------ *)
(* Demand-driven routing cache: cold/warm query cost, and reconvergence
   under a fault schedule — incremental invalidation vs the eager
   recompute-every-source scheme it replaced. *)

let routing_bench () =
  section "routing cache — demand-driven SPTs, incremental reconvergence";
  let spec = Topology.Waxman.generate ~seed:7 ~n:100 () in
  let g = spec.Topology.Spec.graph in
  let n = Netgraph.Graph.node_count g in
  let mk_net () =
    let engine = Eventsim.Engine.create () in
    (engine, Eventsim.Netsim.create engine g ~classify:(fun (_ : unit) -> `Data))
  in
  (* cold vs warm: the first query per source pays one Dijkstra, the
     second is a table read *)
  let _, net = mk_net () in
  let sweep () =
    let acc = ref 0.0 in
    for s = 0 to n - 1 do
      acc :=
        !acc
        +. Eventsim.Routes.distance
             (Eventsim.Netsim.routes net)
             ~src:s
             ~dst:((s + (n / 2)) mod n)
    done;
    !acc
  in
  let cold_sum, cold_s = Obs.Clock.time sweep in
  let warm_sum, warm_s = Obs.Clock.time sweep in
  assert (cold_sum = warm_sum);
  let tab =
    T.create
      [
        T.column ~align:T.Left "phase";
        T.column "queries";
        T.column "SPTs built";
        T.column "ns/query";
      ]
  in
  let per_query s = s /. float_of_int n *. 1e9 in
  T.add_row tab
    [ "cold (one sweep, all sources)"; string_of_int n; string_of_int n;
      Printf.sprintf "%.0f" (per_query cold_s) ];
  T.add_row tab
    [ "warm (same sweep again)"; string_of_int n; "0";
      Printf.sprintf "%.0f" (per_query warm_s) ];
  print_table ~title:"100-node Waxman (seed 7), one distance query per source"
    tab;
  (* reconvergence under churn: 10 link failures (each restored 3 s
     later) drawn over [1, 30); after every topology change a 32-pair
     query workload fires. The eager scheme is the seed implementation:
     rebuild a live-graph copy and recompute all n sources per change. *)
  let faults_for () =
    Eventsim.Faults.random_link_failures ~seed:13 ~count:10 ~t0:1.0 ~t1:30.0
      ~restore_after:3.0 g
  in
  let run_scheme ~eager =
    let engine, net = mk_net () in
    let qrng = Scmp_util.Prng.create 99 in
    let eager_built = ref 0 in
    let eager_tbl = ref None in
    let rebuild_eager () =
      let r = Eventsim.Routes.compute (Eventsim.Netsim.live_graph net) in
      for s = 0 to n - 1 do
        ignore (Eventsim.Routes.spt r ~src:s)
      done;
      eager_built := !eager_built + n;
      eager_tbl := Some r
    in
    if eager then begin
      rebuild_eager ();
      Eventsim.Netsim.on_topology_change net rebuild_eager
    end;
    let query () =
      for _ = 1 to 32 do
        let src = Scmp_util.Prng.int qrng n
        and dst = Scmp_util.Prng.int qrng n in
        match !eager_tbl with
        | Some r -> ignore (Eventsim.Routes.distance r ~src ~dst)
        | None ->
          ignore
            (Eventsim.Routes.distance (Eventsim.Netsim.routes net) ~src ~dst)
      done
    in
    Eventsim.Netsim.on_topology_change net query;
    ignore (Eventsim.Faults.install net (faults_for ()));
    query ();
    let (), wall = Obs.Clock.time (fun () -> Eventsim.Engine.run engine) in
    let epochs = Eventsim.Netsim.routes_epoch net in
    let built, invalidated =
      if eager then (!eager_built, n * epochs)
      else
        ( Eventsim.Routes.computed (Eventsim.Netsim.routes net),
          Eventsim.Routes.invalidated (Eventsim.Netsim.routes net) )
    in
    let events = Eventsim.Engine.events_executed engine in
    (epochs, built, invalidated, events, wall)
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "scheme";
        T.column "reconvergences";
        T.column "SPTs built";
        T.column "invalidated";
        T.column "ns/event";
      ]
  in
  let add name (epochs, built, invalidated, events, wall) =
    T.add_row tab
      [
        name;
        string_of_int epochs;
        string_of_int built;
        string_of_int invalidated;
        Printf.sprintf "%.0f" (wall /. float_of_int (max events 1) *. 1e9);
      ]
  in
  add "eager (recompute all sources)" (run_scheme ~eager:true);
  add "lazy (incremental invalidation)" (run_scheme ~eager:false);
  print_table
    ~title:
      "10 link failures + restores (seed 13) over 30 s, 32 queries per \
       reconvergence; eager cost is n SPTs per epoch plus the initial table"
    tab

(* Best-of-k batched timing. Single-shot means are noisy (GC pauses,
   scheduler preemption land in the sample); instead each workload is
   calibrated to a batch long enough to swamp timer resolution, k
   batches are timed, and the minimum per-run time is reported — the
   standard estimator for "how fast does this code run undisturbed". *)

let net_seeds c = if c.Workload.full then 10 else 2

let workloads =
  [
    {
      Workload.name = "fig8";
      doc = "data/protocol overhead vs group size, all drivers";
      run = (fun c -> fig8 ~seeds:(net_seeds c) ());
    };
    {
      Workload.name = "fig9";
      doc = "maximum end-to-end delay vs group size";
      run = (fun c -> fig9 ~seeds:(net_seeds c) ());
    };
    {
      Workload.name = "placement";
      doc = "m-router placement rules vs random";
      run = (fun c -> placement ~seeds:(if c.Workload.full then 3 else 1) ());
    };
    {
      Workload.name = "pimsm";
      doc = "PIM-SM RP study";
      run = (fun _ -> pimsm ());
    };
    {
      Workload.name = "routing";
      doc = "routing-layer benchmark";
      run = (fun _ -> routing_bench ());
    };
  ]
