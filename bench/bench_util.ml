(* Shared benchmark plumbing: table printing with optional CSV export,
   the figs-8/9 protocol-comparison cell runner, and the calibrated
   best-of-k timing helpers used by the micro-benchmarks. *)

module T = Scmp_util.Texttab

let pr fmt = Printf.printf fmt

(* With --csv DIR, every printed table is also written as a CSV file
   named after its title. *)
let csv_dir : string option ref = ref None

let slugify s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    (String.lowercase_ascii s)

let print_table ?title tab =
  T.print ?title tab;
  match (!csv_dir, title) with
  | Some dir, Some title ->
    let path = Filename.concat dir (slugify title ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (T.to_csv tab))
  | _ -> ()

let section title =
  pr "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Figs 8 and 9: network-wide protocol comparison. One source at
   1 pkt/s for 30 s; group size 8..40; ARPANET + two random
   topologies. *)

let fig89_group_sizes = [ 8; 12; 16; 20; 24; 28; 32; 36; 40 ]

type net_topology = Arpanet_t | Random_deg3 | Random_deg5

let topology_name = function
  | Arpanet_t -> "ARPANET (48 nodes)"
  | Random_deg3 -> "random, 50 nodes, avg degree 3"
  | Random_deg5 -> "random, 50 nodes, avg degree 5"

let make_spec topo seed =
  match topo with
  | Arpanet_t -> Topology.Arpanet.generate ~seed
  | Random_deg3 -> Topology.Flat_random.generate ~seed ~n:50 ~avg_degree:3.0
  | Random_deg5 -> Topology.Flat_random.generate ~seed ~n:50 ~avg_degree:5.0

(* One averaged experiment cell: protocol x topology x group size.
   Protocols come from the driver registry, so the comparison includes
   every registered driver (pim-sm along the paper's four). *)
let run_cell driver topo ~size ~seeds ~pick =
  let acc = Scmp_util.Stats.create () in
  for seed = 1 to seeds do
    let spec = make_spec topo seed in
    let g = spec.Topology.Spec.graph in
    let n = Netgraph.Graph.node_count g in
    let apsp = Netgraph.Apsp.compute g in
    let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
    let rng = Scmp_util.Prng.create ((seed * 104729) + size) in
    let members =
      Scmp_util.Prng.sample rng (min size (n - 1)) n
      |> List.filter (fun x -> x <> center)
    in
    let source = List.hd members in
    let sc = Protocols.Runner.make ~spec ~center ~source ~members () in
    let r = Protocols.Runner.run driver sc in
    if r.Protocols.Runner.missed > 0 || r.duplicates > 0 || r.spurious > 0 then
      pr "!! %s %s size=%d seed=%d: missed=%d dup=%d spur=%d\n"
        (Protocols.Driver.display driver)
        (topology_name topo) size seed r.missed r.duplicates r.spurious;
    Scmp_util.Stats.add acc (pick r)
  done;
  Scmp_util.Stats.mean acc

let protocol_figure ~title ~seeds ~pick ~decimals () =
  let drivers = Protocols.Driver.all () in
  List.iter
    (fun topo ->
      let tab =
        T.create
          (T.column ~align:T.Left "group size"
          :: List.map (fun d -> T.column (Protocols.Driver.display d)) drivers)
      in
      List.iter
        (fun size ->
          let row =
            List.map (fun d -> run_cell d topo ~size ~seeds ~pick) drivers
          in
          T.add_float_row tab ~decimals (string_of_int size) row)
        fig89_group_sizes;
      print_table ~title:(Printf.sprintf "%s — %s" title (topology_name topo)) tab)
    [ Arpanet_t; Random_deg3; Random_deg5 ]

let calibrate_runs ~min_batch_s f =
  let rec go runs =
    let (), s =
      Obs.Clock.time (fun () ->
          for _ = 1 to runs do
            ignore (f ())
          done)
    in
    if s >= min_batch_s || runs >= 1_000_000 then runs
    else
      let scale =
        if s <= 0.0 then 16.0 else Float.min 16.0 (min_batch_s /. s *. 1.25)
      in
      go (max (runs + 1) (int_of_float (float_of_int runs *. scale)))
  in
  go 1

let best_of_ns ?(k = 5) ?(min_batch_s = 2e-3) f =
  let runs = calibrate_runs ~min_batch_s f in
  let best = ref infinity in
  for _ = 1 to k do
    let (), s =
      Obs.Clock.time (fun () ->
          for _ = 1 to runs do
            ignore (f ())
          done)
    in
    let per = s /. float_of_int runs in
    if per < !best then best := per
  done;
  !best *. 1e9

(* Median-of-ratios A/B timing: k rounds of adjacent (fa, fb) batches,
   each yielding one fb/fa per-run ratio. The host's speed moves by tens
   of percent between bench invocations — and not uniformly: a
   pointer-chasing workload degrades more under memory contention than
   an array-walking one — so ns figures recorded by separate runs do
   not divide into a meaningful ratio. Adjacent batches see the same
   host conditions, and the median discards the rounds a phase change
   lands in the middle of. *)
let paired_ratio ?(k = 9) ?(min_batch_s = 2e-3) fa fb =
  let runs_a = calibrate_runs ~min_batch_s fa in
  let runs_b = calibrate_runs ~min_batch_s fb in
  let ratios =
    Array.init k (fun _ ->
        let (), sa =
          Obs.Clock.time (fun () ->
              for _ = 1 to runs_a do
                ignore (fa ())
              done)
        in
        let (), sb =
          Obs.Clock.time (fun () ->
              for _ = 1 to runs_b do
                ignore (fb ())
              done)
        in
        sb /. float_of_int runs_b /. (sa /. float_of_int runs_a))
  in
  Array.sort compare ratios;
  ratios.(k / 2)

