(* Execution-engine workloads: the parallel sweep and chaos benches. *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* Parallel sweep engine: the same grid on 1 worker and on --jobs
   workers, checking that the merged reports are byte-identical and
   reporting the observed speedup. *)

let sweep_bench ~full ~jobs () =
  section "parallel sweep engine (Exec.Sweep)";
  let spec =
    if full then
      Exec.Sweep.make
        ~drivers:[ "scmp"; "cbt"; "dvmrp"; "mospf"; "pim-sm" ]
        ~topos:[ Exec.Sweep.Random3 50; Exec.Sweep.Arpanet ]
        ~group_sizes:[ 8; 16; 24 ] ~seeds:[ 1; 2 ] ()
    else
      Exec.Sweep.make ~packets:10 ~drivers:[ "scmp"; "cbt" ]
        ~topos:[ Exec.Sweep.Random3 30 ]
        ~group_sizes:[ 8; 16 ] ~seeds:[ 1 ] ()
  in
  let run_with jobs =
    match Exec.Sweep.run ~jobs spec with
    | Ok o -> o
    | Error msg -> failwith ("sweep bench: " ^ msg)
  in
  let seq = run_with 1 in
  let par = run_with jobs in
  let tab =
    T.create
      [
        T.column ~align:T.Left "jobs";
        T.column "cells";
        T.column "wall (s)";
        T.column "cells/s";
        T.column "speedup";
      ]
  in
  let row (o : Exec.Sweep.outcome) =
    T.add_row tab
      [
        string_of_int o.jobs_used;
        string_of_int (List.length o.cell_results);
        Printf.sprintf "%.3f" o.wall_s;
        Printf.sprintf "%.1f" (float_of_int (List.length o.cell_results) /. o.wall_s);
        Printf.sprintf "%.2fx" (o.seq_estimate_s /. o.wall_s);
      ]
  in
  row seq;
  row par;
  print_table
    ~title:
      (Printf.sprintf "%d cells (%s)"
         (List.length (Exec.Sweep.cells spec))
         (String.concat ", " spec.Exec.Sweep.drivers))
    tab;
  let identical =
    Obs.Report.to_string ~wallclock:false seq.Exec.Sweep.report
    = Obs.Report.to_string ~wallclock:false par.Exec.Sweep.report
  in
  pr "merged reports byte-identical across jobs: %s\n"
    (if identical then "yes" else "NO — DETERMINISM BUG");
  if not identical then exit 1

(* ------------------------------------------------------------------ *)

let chaos_bench ~full ~jobs () =
  section "chaos campaigns (Exec.Chaos) — seeded fault programs, invariants on";
  let spec =
    if full then
      Exec.Chaos.make ~packets:12 ~group_size:8 ~seed:1
        ~drivers:[ "scmp"; "cbt"; "dvmrp"; "mospf"; "pim-sm" ]
        ~topos:[ Exec.Sweep.Waxman 40; Exec.Sweep.Random3 30 ]
        ~trials:40 ()
    else
      Exec.Chaos.make ~packets:10 ~group_size:6 ~seed:1 ~drivers:[ "scmp" ]
        ~topos:[ Exec.Sweep.Waxman 30 ] ~trials:15 ()
  in
  let run_with jobs =
    match Exec.Chaos.run ~jobs spec with
    | Ok o -> o
    | Error msg -> failwith ("chaos bench: " ^ msg)
  in
  let seq = run_with 1 in
  let par = run_with jobs in
  let tab =
    T.create
      [
        T.column ~align:T.Left "jobs";
        T.column "trials";
        T.column "violations";
        T.column "blackout p50 (s)";
        T.column "blackout p95 (s)";
        T.column "wall (s)";
      ]
  in
  let row (o : Exec.Chaos.outcome) =
    let pct p =
      if o.blackouts = [] then "-"
      else Printf.sprintf "%.3f" (Scmp_util.Stats.percentile_l p o.blackouts)
    in
    T.add_row tab
      [
        string_of_int o.jobs_used;
        string_of_int (List.length o.results);
        string_of_int (List.length o.violations);
        pct 50.0;
        pct 95.0;
        Printf.sprintf "%.3f" o.wall_s;
      ]
  in
  row seq;
  row par;
  print_table
    ~title:
      (Printf.sprintf "%d trials (%s)"
         (List.length (Exec.Chaos.plan spec))
         (String.concat ", " spec.Exec.Chaos.drivers))
    tab;
  let identical =
    Obs.Report.to_string ~wallclock:false seq.Exec.Chaos.report
    = Obs.Report.to_string ~wallclock:false par.Exec.Chaos.report
  in
  pr "campaign reports byte-identical across jobs: %s\n"
    (if identical then "yes" else "NO — DETERMINISM BUG");
  if not identical then exit 1;
  if seq.Exec.Chaos.violations <> [] then begin
    List.iter
      (fun (v : Exec.Chaos.violation) ->
        pr "VIOLATION %s: %s\n  minimal: %s\n"
          (Exec.Chaos.trial_name v.Exec.Chaos.v_trial)
          v.Exec.Chaos.message
          (Exec.Chaos.program_to_string v.Exec.Chaos.minimal))
      seq.Exec.Chaos.violations;
    exit 1
  end


let workloads =
  [
    {
      Workload.name = "sweep";
      doc = "parallel sweep engine speedup/determinism";
      run = (fun c -> sweep_bench ~full:c.Workload.full ~jobs:c.jobs ());
    };
    {
      Workload.name = "chaos";
      doc = "chaos campaign bench";
      run = (fun c -> chaos_bench ~full:c.Workload.full ~jobs:c.jobs ());
    };
  ]
