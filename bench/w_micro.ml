(* Best-of-k micro-benchmarks of the core algorithms. *)

open Bench_util

let micro ?json ~full ~jobs () =
  section "micro-benchmarks (best-of-k batches)";
  let spec = Topology.Waxman.generate ~seed:5 ~n:100 () in
  let g = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g in
  let rng = Scmp_util.Prng.create 9 in
  let members =
    Scmp_util.Prng.sample rng 30 100 |> List.filter (fun x -> x <> 0)
  in
  let tree = Mtree.Dcdm.build apsp ~root:0 ~bound:Mtree.Bound.Moderate ~members in
  let packet =
    Protocols.Tree_packet.of_tree tree ~at:(List.hd (Mtree.Tree.children tree 0))
  in
  let words = Protocols.Tree_packet.encode packet in
  let perm =
    let p = Array.init 64 (fun i -> i) in
    Scmp_util.Prng.shuffle rng p;
    p
  in
  let ws = Netgraph.Dijkstra.create_workspace () in
  let g1k =
    (Topology.Waxman.generate ~seed:5 ~n:1000 ()).Topology.Spec.graph
  in
  let ws1k = Netgraph.Dijkstra.create_workspace () in
  let links1k =
    let acc = ref [] in
    Netgraph.Graph.iter_links g1k (fun l ->
        acc :=
          (l.Netgraph.Graph.u, l.Netgraph.Graph.v, l.Netgraph.Graph.delay,
           l.Netgraph.Graph.cost)
          :: !acc);
    List.rev !acc
  in
  let n1k = Netgraph.Graph.node_count g1k in
  (* Pre-CSR reference: the seed implementation's Dijkstra, preserved
     verbatim in shape — adjacency lists of (neighbor, delay, cost)
     tuples, a binary {!Scmp_util.Heap} frontier, fresh arrays per run.
     Timed as dijkstra-100-ref so check.sh can gate the CSR+radix path
     against the algorithm it replaced on the same machine, immune to
     host speed drift between bench runs. *)
  let ref_adj =
    let n = Netgraph.Graph.node_count g in
    let adj = Array.make n [] in
    Netgraph.Graph.iter_links g (fun l ->
        let u = l.Netgraph.Graph.u and v = l.Netgraph.Graph.v in
        let delay = l.Netgraph.Graph.delay and cost = l.Netgraph.Graph.cost in
        adj.(u) <- adj.(u) @ [ (v, delay, cost) ];
        adj.(v) <- adj.(v) @ [ (u, delay, cost) ]);
    adj
  in
  let ref_iter_neighbors adj x f =
    List.iter (fun (y, d, c) -> f y ~delay:d ~cost:c) adj.(x)
  in
  let dijkstra_ref ?node_ok ?edge_ok adj ~metric ~source =
    (* Like the seed, filters default to always-true closures invoked
       per node and per edge — plain runs paid that indirection too. *)
    let node_ok = match node_ok with None -> fun _ -> true | Some f -> f in
    let edge_ok = match edge_ok with None -> fun _ _ -> true | Some f -> f in
    let n = Array.length adj in
    let dist = Array.make n infinity in
    let pred = Array.make n (-1) in
    let other = Array.make n infinity in
    let settled = Array.make n false in
    let heap = Scmp_util.Heap.create ~capacity:n () in
    dist.(source) <- 0.0;
    other.(source) <- 0.0;
    Scmp_util.Heap.add heap ~key:0.0 source;
    let rec drain () =
      match Scmp_util.Heap.pop heap with
      | None -> ()
      | Some (d, x) ->
        if not settled.(x) then begin
          settled.(x) <- true;
          if node_ok x then
            ref_iter_neighbors adj x (fun y ~delay ~cost ->
                if node_ok y && edge_ok x y then begin
                  let w, wo =
                    match metric with
                    | Netgraph.Dijkstra.Delay -> (delay, cost)
                    | Netgraph.Dijkstra.Cost -> (cost, delay)
                  in
                  let nd = d +. w in
                  if nd < dist.(y) then begin
                    dist.(y) <- nd;
                    pred.(y) <- x;
                    other.(y) <- other.(x) +. wo;
                    Scmp_util.Heap.add heap ~key:nd y
                  end
                end)
        end;
        drain ()
    in
    drain ();
    dist
  in
  (* Event-kernel churn: a self-rescheduling event population — every
     firing schedules the next — so the measured cost is pure
     scheduler: enqueue, locate-min, pop, dispatch. The new kernel runs
     it through [schedule_fast] dispatch records (no closure per
     event); [churn_ref] below replays the exact same event sequence on
     the pre-overhaul engine shape (binary-heap frontier, one fresh
     thunk allocated per event). Delays are quantized to multiples of
     1/8 s, so equal-time ties — the FIFO sequence rule — occur
     constantly, as they do in a real run. *)
  let churn_sources = 4096 and churn_depth = 7 in
  let churn_delay i rem =
    0.125 *. float_of_int (((i * 37) + (rem * 101)) land 63)
  in
  let churn_new () =
    let e = Eventsim.Engine.create () in
    let dref = ref (Eventsim.Engine.dispatch (fun _ _ _ _ _ -> ())) in
    dref :=
      Eventsim.Engine.dispatch (fun i rem _ _ _ ->
          if rem > 0 then
            Eventsim.Engine.schedule_fast e
              ~time:(Eventsim.Engine.now e +. churn_delay i rem)
              !dref i (rem - 1) 0 0 0);
    for i = 0 to churn_sources - 1 do
      Eventsim.Engine.schedule_fast e
        ~time:(churn_delay i churn_depth)
        !dref i (churn_depth - 1) 0 0 0
    done;
    Eventsim.Engine.run e;
    Eventsim.Engine.events_executed e
  in
  let churn_ref () =
    let heap = Scmp_util.Heap.create () in
    let clock = ref 0.0 in
    let executed = ref 0 in
    let rec fire i rem () =
      if rem > 0 then
        Scmp_util.Heap.add heap
          ~key:(!clock +. churn_delay i rem)
          (fire i (rem - 1))
    in
    for i = 0 to churn_sources - 1 do
      Scmp_util.Heap.add heap
        ~key:(churn_delay i churn_depth)
        (fire i (churn_depth - 1))
    done;
    let rec drain () =
      match Scmp_util.Heap.pop heap with
      | None -> ()
      | Some (t, thunk) ->
        clock := t;
        incr executed;
        thunk ();
        drain ()
    in
    drain ();
    !executed
  in
  (* the reference must replay the same population, not a cheaper one *)
  assert (churn_new () = churn_ref ());
  let workloads =
    [
      ( "dijkstra-100",
        fun () ->
          let r =
            Netgraph.Dijkstra.run ~ws g ~metric:Netgraph.Dijkstra.Delay
              ~source:0
          in
          Netgraph.Dijkstra.recycle ws r );
      ( "dijkstra-100-ref",
        fun () ->
          ignore
            (dijkstra_ref ref_adj ~metric:Netgraph.Dijkstra.Delay ~source:0) );
      ( "dijkstra-1000",
        fun () ->
          let r =
            Netgraph.Dijkstra.run ~ws:ws1k g1k ~metric:Netgraph.Dijkstra.Delay
              ~source:0
          in
          Netgraph.Dijkstra.recycle ws1k r );
      ( "freeze-1000",
        fun () ->
          let b = Netgraph.Graph.Builder.create n1k in
          List.iter
            (fun (u, v, delay, cost) ->
              Netgraph.Graph.Builder.add_link b u v ~delay ~cost)
            links1k;
          ignore (Netgraph.Graph.Builder.freeze b) );
      ( "dcdm-build-30",
        fun () ->
          ignore
            (Mtree.Dcdm.build apsp ~root:0 ~bound:Mtree.Bound.Moderate ~members)
      );
      ("kmb-build-30", fun () -> ignore (Mtree.Kmb.build apsp ~root:0 ~members));
      ("spt-build-30", fun () -> ignore (Mtree.Spt.build apsp ~root:0 ~members));
      ("engine-churn", fun () -> ignore (churn_new ()));
      ("engine-churn-ref", fun () -> ignore (churn_ref ()));
      ("benes-route-64", fun () -> ignore (Fabric.Benes.route perm));
      ( "tree-packet-roundtrip",
        fun () -> ignore (Protocols.Tree_packet.decode words) );
    ]
  in
  (* reduced scale by default (the check.sh smoke step); --full takes
     more and longer batches *)
  let k, min_batch_s = if full then (9, 10e-3) else (5, 2e-3) in
  let rows =
    List.map (fun (name, f) -> ("scmp/" ^ name, best_of_ns ~k ~min_batch_s f))
      workloads
  in
  let rows = List.sort compare rows in
  List.iter (fun (name, est) -> pr "%-34s %14.1f ns/run\n" name est) rows;
  (* The perf-gate number for check.sh: how much faster the CSR+radix
     Dijkstra is than the preserved pre-CSR reference, measured as
     interleaved batches so the ratio survives host speed drift. *)
  let dij_speedup =
    paired_ratio
      ~k:(if full then 11 else 9)
      ~min_batch_s
      (fun () ->
        let r =
          Netgraph.Dijkstra.run ~ws g ~metric:Netgraph.Dijkstra.Delay
            ~source:0
        in
        Netgraph.Dijkstra.recycle ws r)
      (fun () ->
        ignore (dijkstra_ref ref_adj ~metric:Netgraph.Dijkstra.Delay ~source:0))
  in
  pr "%-34s %14.2f x (ref / csr, paired batches)\n" "scmp/dijkstra-100-speedup"
    dij_speedup;
  (* The event-kernel gate: calendar-queue + dispatch-record engine
     against the heap-and-thunks shape it replaced, same interleaved
     discipline. *)
  let churn_speedup =
    paired_ratio ~k:(if full then 11 else 9) ~min_batch_s churn_new churn_ref
  in
  pr "%-34s %14.2f x (ref / new, paired batches)\n" "scmp/engine-churn-speedup"
    churn_speedup;
  (* End-to-end throughput: the full SCMP runner scenario. The
     instrumented first run supplies the event and delivery totals (and
     warms the scenario's scaled-graph/APSP memos); the throughput
     figure is steady-state — best of k batches over the warmed
     scenario — so it measures the kernel and the protocol work, not
     first-run cache fills, under the same noise discipline as the
     micro rows. *)
  let e2e_driver = Protocols.Driver.find_exn "scmp" in
  let e2e_spec = Topology.Flat_random.generate ~seed:4 ~n:50 ~avg_degree:3.0 in
  let e2e_apsp = Netgraph.Apsp.compute e2e_spec.Topology.Spec.graph in
  let center = Scmp.Placement.pick e2e_apsp Scmp.Placement.Min_avg_delay in
  let e2e_members =
    Scmp_util.Prng.sample (Scmp_util.Prng.create 23) 16 50
    |> List.filter (fun x -> x <> center)
  in
  let sc =
    Protocols.Runner.make ~spec:e2e_spec ~center
      ~source:(List.hd e2e_members) ~members:e2e_members ()
  in
  let e2e_report = Obs.Report.create ~name:"bench-e2e" () in
  let r = Protocols.Runner.run ~report:e2e_report e2e_driver sc in
  let e2e_wall =
    1e-9
    *. best_of_ns ~k ~min_batch_s (fun () ->
           ignore (Protocols.Runner.run e2e_driver sc))
  in
  let events =
    match
      Obs.Json.(
        match Obs.Metrics.to_json (Obs.Report.metrics e2e_report) with
        | Obj kvs -> List.assoc_opt "engine/events_executed" kvs
        | _ -> None)
    with
    | Some (Obs.Json.Int n) -> n
    | _ -> 0
  in
  pr "\nend-to-end (scmp, 50-node random deg 3, 16 members, 30 pkts):\n";
  pr "%-34s %14.3f ms\n" "wall time (steady, best of k)" (1000.0 *. e2e_wall);
  pr "%-34s %14.0f events/s\n" "engine throughput"
    (float_of_int events /. e2e_wall);
  pr "%-34s %14d delivered\n" "deliveries" r.Protocols.Runner.deliveries;
  match json with
  | None -> ()
  | Some path ->
    let rep = Obs.Report.create ~name:"bench-micro" () in
    Obs.Report.set_meta rep "kind" (Obs.Json.String "micro");
    Obs.Report.set_meta rep "full" (Obs.Json.Bool full);
    Obs.Report.set_meta rep "jobs" (Obs.Json.Int jobs);
    let m = Obs.Report.metrics rep in
    let wall_gauge name v =
      Obs.Metrics.set (Obs.Metrics.gauge ~wallclock:true m name) v
    in
    List.iter
      (fun (name, est) ->
        (* bechamel names tests "scmp/<name>" *)
        let key =
          match String.index_opt name '/' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name
        in
        wall_gauge (Printf.sprintf "micro/%s/ns_per_run" key) est)
      rows;
    wall_gauge "micro/dijkstra-100-speedup/x" dij_speedup;
    wall_gauge "micro/engine-churn-speedup/x" churn_speedup;
    wall_gauge "e2e/scmp/wall_s" e2e_wall;
    wall_gauge "e2e/scmp/events_per_s" (float_of_int events /. e2e_wall);
    wall_gauge "e2e/scmp/deliveries_per_s"
      (float_of_int r.Protocols.Runner.deliveries /. e2e_wall);
    Obs.Metrics.set_counter
      (Obs.Metrics.counter m "e2e/scmp/deliveries")
      r.Protocols.Runner.deliveries;
    Obs.Metrics.set_counter (Obs.Metrics.counter m "e2e/scmp/events") events;
    (match Obs.Report.write ~pretty:true rep ~path with
    | Ok () -> pr "\nbench report written to %s\n" path
    | Error msg -> pr "\n!! could not write %s: %s\n" path msg)


let workloads =
  [
    {
      Workload.name = "micro";
      doc = "best-of-k micro-benchmarks (--json writes scmp-report/1)";
      run = (fun c -> micro ?json:c.Workload.json ~full:c.full ~jobs:c.jobs ());
    };
  ]
