(* Resilience workloads: scheduled faults and the failover study. *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* Fault recovery (ours): SCMP through control-plane loss and random
   mid-data link failures — what the reliable transport and the tree
   repair cost, and what delivery ratio they buy. *)

let faults_bench () =
  section "fault recovery — loss, link failures, tree repair";
  let spec = Topology.Flat_random.generate ~seed:4 ~n:50 ~avg_degree:3.0 in
  let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
  let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let rng = Scmp_util.Prng.create 41 in
  let members =
    Scmp_util.Prng.sample rng 12 50 |> List.filter (fun x -> x <> center)
  in
  let base =
    Protocols.Runner.make ~spec ~center ~source:(List.hd members) ~members ()
  in
  let data_end =
    base.Protocols.Runner.data_start
    +. (base.data_interval *. float_of_int base.data_count)
  in
  let run_case ?loss ?loss_class ~fail_count () =
    let faults =
      if fail_count = 0 then []
      else
        Eventsim.Faults.random_link_failures ~seed:11 ~count:fail_count
          ~t0:base.Protocols.Runner.data_start ~t1:data_end
          spec.Topology.Spec.graph
    in
    let sc = { base with Protocols.Runner.loss; loss_class; faults } in
    let report = Obs.Report.create ~name:"bench-faults" () in
    let r =
      Protocols.Runner.run ~report (Protocols.Driver.find_exn "scmp") sc
    in
    let m = Obs.Report.metrics report in
    let c name = Obs.Metrics.counter_value (Obs.Metrics.counter m name) in
    (r, c "scmp/retransmissions", c "scmp/giveups", c "scmp/repair/count")
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "scenario";
        T.column "delivery ratio";
        T.column "dropped";
        T.column "retransmits";
        T.column "give-ups";
        T.column "repairs";
        T.column "proto overhead";
      ]
  in
  List.iter
    (fun (name, loss, loss_class, fail_count) ->
      let r, retx, giveups, repairs = run_case ?loss ?loss_class ~fail_count () in
      T.add_row tab
        [
          name;
          Printf.sprintf "%.4f" r.Protocols.Runner.delivery_ratio;
          string_of_int r.dropped;
          string_of_int retx;
          string_of_int giveups;
          string_of_int repairs;
          Printf.sprintf "%.0f" r.protocol_overhead;
        ])
    [
      ("no faults", None, None, 0);
      ("5% control loss", Some (0.05, 42), Some `Control, 0);
      ("2 random link failures", None, None, 2);
      ("loss + 2 failures", Some (0.05, 42), Some `Control, 2);
    ];
  print_table
    ~title:
      "50-node random (deg 3), 12 members, 30 pkts; failures drawn \
       uniformly over the data phase (seed 11)"
    tab

(* ------------------------------------------------------------------ *)
(* Hot-standby m-router failover (concluding remarks, point 4):
   steady-state cost of the standby and behaviour through a failure. *)

let failover () =
  section "m-router hot standby (concluding remarks)";
  let spec = Topology.Waxman.generate ~seed:77 ~n:40 () in
  let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
  let primary = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let standby0 = Scmp.Placement.pick apsp Scmp.Placement.Max_degree in
  let standby = if standby0 = primary then (primary + 1) mod 40 else standby0 in
  let members =
    List.filter (fun x -> x <> primary && x <> standby) [ 4; 12; 19; 27; 33 ]
  in
  (* A genuinely off-tree source: its packets are encapsulated to the
     m-router (§III.F), so the m-router's death actually interrupts
     delivery. DCDM is invariant under uniform delay scaling, so the
     unscaled tree predicts the scaled one. *)
  let source =
    let tree =
      Mtree.Dcdm.build apsp ~root:primary ~bound:Mtree.Bound.Tightest ~members
    in
    List.find
      (fun x -> (not (Mtree.Tree.on_tree tree x)) && x <> standby)
      (List.init 40 Fun.id)
  in
  let run_case ~with_standby ~fail =
    let g =
      Netgraph.Graph.map_links spec.Topology.Spec.graph ~f:(fun l ->
          (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let delivery = Protocols.Delivery.create e in
    let p =
      if with_standby then
        Protocols.Scmp_proto.create ~delivery ~standby ~heartbeat_interval:0.5
          ~takeover_after:1.5 net ~mrouter:primary ()
      else Protocols.Scmp_proto.create ~delivery net ~mrouter:primary ()
    in
    List.iteri
      (fun i m ->
        Eventsim.Engine.schedule_at e ~time:(0.1 +. (0.2 *. float_of_int i))
          (fun () -> Protocols.Scmp_proto.host_join p ~group:1 m))
      members;
    if fail then
      Eventsim.Engine.schedule_at e ~time:10.0 (fun () ->
          Protocols.Scmp_proto.fail_primary p);
    let src = source in
    let expected = members in
    for seq = 0 to 29 do
      let at = 5.0 +. float_of_int seq in
      Eventsim.Engine.schedule_at e ~time:at (fun () ->
          Protocols.Delivery.expect delivery ~seq ~members:expected ~sent_at:at;
          Protocols.Scmp_proto.send_data p ~group:1 ~src ~seq)
    done;
    Eventsim.Engine.run ~until:40.0 e;
    ( Eventsim.Netsim.control_overhead net,
      Protocols.Delivery.deliveries delivery,
      Protocols.Delivery.missed delivery,
      Protocols.Scmp_proto.standby_took_over p )
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "case";
        T.column "ctl overhead";
        T.column "delivered";
        T.column "missed";
        T.column ~align:T.Left "recovered";
      ]
  in
  let row name (o, d, m, rec_) =
    T.add_row tab
      [
        name;
        Printf.sprintf "%.0f" o;
        string_of_int d;
        string_of_int m;
        (if rec_ then "yes" else "-");
      ]
  in
  row "no standby, no failure" (run_case ~with_standby:false ~fail:false);
  row "standby, no failure" (run_case ~with_standby:true ~fail:false);
  row "no standby, failure@10s" (run_case ~with_standby:false ~fail:true);
  row "standby, failure@10s" (run_case ~with_standby:true ~fail:true);
  T.print
    ~title:
      "40-node Waxman, 5 members, off-tree source, 30 pkts at 1/s from t=5; failure at t=10 (heartbeat 0.5s, takeover window 1.5s)"
    tab


let workloads =
  [
    { Workload.name = "faults"; doc = "scheduled fault injection"; run = (fun _ -> faults_bench ()) };
    { Workload.name = "failover"; doc = "failover study"; run = (fun _ -> failover ()) };
  ]
