(* Fabric and capacity workloads: the service fabric, multi-group,
   capacity and congestion studies. *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* Fabric validation/ablation: Beneš routing scale and the many-to-many
   merge claims of §II.B. *)

let fabric () =
  section "m-router switching fabric (PN-CCN-DN sandwich, §II.B)";
  let tab =
    T.create
      [
        T.column ~align:T.Left "ports";
        T.column "stages";
        T.column "2x2 elements";
        T.column "perms checked";
        T.column "failures";
      ]
  in
  List.iter
    (fun bits ->
      let n = 1 lsl bits in
      let rng = Scmp_util.Prng.create (1000 + n) in
      let failures = ref 0 in
      let trials = 50 in
      let cfg = ref (Fabric.Benes.identity n) in
      for _ = 1 to trials do
        let p = Array.init n (fun i -> i) in
        Scmp_util.Prng.shuffle rng p;
        cfg := Fabric.Benes.route p;
        if Fabric.Benes.eval !cfg <> p then incr failures
      done;
      T.add_row tab
        [
          string_of_int n;
          string_of_int (Fabric.Benes.depth !cfg);
          string_of_int (Fabric.Benes.element_count !cfg);
          string_of_int trials;
          string_of_int !failures;
        ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  print_table ~title:"Beneš permutation routing (looping algorithm)" tab;
  (* Group churn on a 64-port fabric, verifying isolation after every
     step. *)
  let f = Fabric.Sandwich.create ~ports:64 in
  let rng = Scmp_util.Prng.create 31337 in
  let steps = 500 and violations = ref 0 and opened = ref 0 and merged = ref 0 in
  for step = 1 to steps do
    let gid = 1 + Scmp_util.Prng.int rng 8 in
    (match Scmp_util.Prng.int rng 4 with
    | 0 ->
      (match Fabric.Sandwich.open_group f ~gid ~output:(32 + gid) with
      | Ok () -> incr opened
      | Error _ -> ())
    | 1 ->
      if List.mem gid (Fabric.Sandwich.groups f) then begin
        match
          Fabric.Sandwich.add_source f ~gid ~input:(Scmp_util.Prng.int rng 32)
        with
        | Ok () -> incr merged
        | Error _ -> ()
      end
    | 2 ->
      if List.mem gid (Fabric.Sandwich.groups f) then begin
        match Fabric.Sandwich.sources f gid with
        | [] -> ()
        | input :: _ -> Fabric.Sandwich.remove_source f ~gid ~input
      end
    | _ -> if step mod 7 = 0 then Fabric.Sandwich.close_group f gid);
    match Fabric.Sandwich.self_check f with
    | Ok () -> ()
    | Error _ -> incr violations
  done;
  pr
    "\ngroup churn: %d steps (%d opens, %d source merges) on 64 ports — %d \
     isolation/routing violations\n"
    steps !opened !merged !violations;
  (* the ref [10] self-routing copy network: exactly-the-interval
     delivery at every width *)
  let cn = Fabric.Copynet.create 256 in
  let ctab =
    T.create
      [
        T.column ~align:T.Left "copies";
        T.column "elements used";
        T.column "checked";
        T.column "failures";
      ]
  in
  List.iter
    (fun width ->
      let rng = Scmp_util.Prng.create (3000 + width) in
      let failures = ref 0 and used = ref 0 in
      let trials = 40 in
      for _ = 1 to trials do
        let lo =
          if width = 256 then 0 else Scmp_util.Prng.int rng (256 - width + 1)
        in
        let hi = lo + width - 1 in
        let plan = Fabric.Copynet.route cn ~lo ~hi in
        used := !used + Fabric.Copynet.elements_used plan;
        let out = Fabric.Copynet.eval cn plan in
        Array.iteri
          (fun i got -> if got <> (i >= lo && i <= hi) then incr failures)
          out
      done;
      T.add_row ctab
        [
          string_of_int width;
          string_of_int (!used / trials);
          string_of_int trials;
          string_of_int !failures;
        ])
    [ 1; 4; 16; 64; 256 ];
  print_table ~title:"self-routing copy network (256 ports, interval splitting)" ctab


(* ------------------------------------------------------------------ *)
(* Multiple m-routers per domain (§II.A extension): regional homes cut
   both the control path length and the shared-tree cost. *)

let multi () =
  section "multiple m-routers per domain (§II.A extension)";
  let spec = Topology.Waxman.generate ~seed:11 ~n:60 () in
  let g0 = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g0 in
  let tab =
    T.create
      [
        T.column ~align:T.Left "m-routers";
        T.column "mean tree cost";
        T.column "join ctl overhead";
      ]
  in
  let west, east =
    (* split by x coordinate to get two regional anchors *)
    let coords = spec.Topology.Spec.coords in
    let by_x = List.init 60 Fun.id |> List.sort (fun a b ->
        compare (fst coords.(a)) (fst coords.(b))) in
    (List.nth by_x 15, List.nth by_x 44)
  in
  let central = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  (* Two membership patterns: groups spread domain-wide, and regional
     groups whose members cluster in one half of the map. Regional
     homes pay off exactly when groups are regional — and the bench
     shows the domain-wide case too, where a central m-router wins. *)
  let coords = spec.Topology.Spec.coords in
  let by_x =
    List.init 60 Fun.id
    |> List.sort (fun a b -> compare (fst coords.(a)) (fst coords.(b)))
  in
  let halves = (Array.of_list by_x, 30) in
  let sample_members rng ~regional grp mrouters =
    let pool =
      if not regional then List.init 60 Fun.id
      else begin
        let arr, half = halves in
        let side = if grp mod 2 = 0 then Array.sub arr 0 half else Array.sub arr half 30 in
        Array.to_list side
      end
    in
    let pool = List.filter (fun x -> not (List.mem x mrouters)) pool in
    let arr = Array.of_list pool in
    Scmp_util.Prng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 (min 10 (Array.length arr)))
  in
  let nearest_assign mrouters grp_members =
    (* home = m-router with least total delay to the group's members *)
    fun grp ->
      let members = List.assoc grp grp_members in
      List.fold_left
        (fun best m ->
          let score m =
            List.fold_left (fun acc x -> acc +. Netgraph.Apsp.delay apsp m x) 0.0 members
          in
          if score m < score best then m else best)
        (List.hd mrouters) mrouters
  in
  let run_config name ~regional mrouters =
    let g =
      Netgraph.Graph.map_links g0 ~f:(fun l ->
          (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let rng = Scmp_util.Prng.create 99 in
    let groups = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
    let grp_members =
      List.map (fun grp -> (grp, sample_members rng ~regional grp mrouters)) groups
    in
    let m =
      Protocols.Multi.create
        ~assign:(nearest_assign mrouters grp_members)
        net ~mrouters ()
    in
    List.iter
      (fun (grp, members) ->
        List.iter (fun r -> Protocols.Multi.host_join m ~group:grp r) members)
      grp_members;
    Eventsim.Engine.run e;
    let total_cost =
      List.fold_left
        (fun acc grp ->
          match Protocols.Multi.tree m ~group:grp with
          | Some t -> acc +. Mtree.Eval.tree_cost t
          | None -> acc)
        0.0 groups
    in
    T.add_row tab
      [
        name;
        Printf.sprintf "%.0f" (total_cost /. float_of_int (List.length groups));
        Printf.sprintf "%.0f" (Eventsim.Netsim.control_overhead net);
      ]
  in
  run_config "1 central, domain-wide groups" ~regional:false [ central ];
  run_config "2 regional, domain-wide groups" ~regional:false [ west; east ];
  run_config "1 central, regional groups" ~regional:true [ central ];
  run_config "2 regional, regional groups" ~regional:true [ west; east ];
  T.print
    ~title:"60-node Waxman, 8 groups of 10 members; home = nearest m-router"
    tab

(* ------------------------------------------------------------------ *)
(* m-router control-plane capacity (§II.B: "capable of handling
   multiple multicast tasks simultaneously" on multiple processors).
   JOIN requests arrive in a Poisson stream and queue for a processor;
   each costs a fixed 10 ms of tree recomputation + distribution. *)

let capacity () =
  section "m-router processing capacity (§II.B multiprocessor claim)";
  let spec = Topology.Waxman.generate ~seed:19 ~n:50 () in
  let tab =
    T.create
      [
        T.column ~align:T.Left "processors";
        T.column "arrivals/s";
        T.column "joins served";
        T.column "mean wait (ms)";
        T.column "max queue";
      ]
  in
  let service = 0.010 in
  List.iter
    (fun k ->
      List.iter
        (fun rate ->
          let g =
            Netgraph.Graph.map_links spec.Topology.Spec.graph ~f:(fun l ->
                (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
          in
          let e = Eventsim.Engine.create () in
          let net =
            Eventsim.Netsim.create e g ~classify:Protocols.Message.classify
          in
          let station = Eventsim.Server.create e ~servers:k in
          let p =
            Protocols.Scmp_proto.create ~cpu:(station, service) net ~mrouter:0 ()
          in
          let rng = Scmp_util.Prng.create (k * 1000 + rate) in
          (* Poisson joins over 10 s: random router, one of 8 groups. *)
          let rec arrivals at n =
            if at <= 10.0 then begin
              Eventsim.Engine.schedule_at e ~time:at (fun () ->
                  Protocols.Scmp_proto.host_join p
                    ~group:(1 + (n mod 8))
                    (1 + Scmp_util.Prng.int rng 49));
              let gap =
                -.(1.0 /. float_of_int rate)
                *. log (1.0 -. Scmp_util.Prng.float rng 1.0)
              in
              arrivals (at +. gap) (n + 1)
            end
          in
          arrivals 0.05 0;
          Eventsim.Engine.run e;
          let served = Eventsim.Server.completed station in
          let mean_wait =
            if served = 0 then 0.0
            else Eventsim.Server.total_queueing_delay station /. float_of_int served
          in
          T.add_row tab
            [
              string_of_int k;
              string_of_int rate;
              string_of_int served;
              Printf.sprintf "%.2f" (1000.0 *. mean_wait);
              string_of_int (Eventsim.Server.max_queue_length station);
            ])
        [ 50; 90; 150 ])
    [ 1; 2; 4 ];
  T.print
    ~title:"50-node Waxman, 8 groups, 10 ms service per JOIN, 10 s Poisson stream"
    tab

(* ------------------------------------------------------------------ *)
(* Traffic concentration at the center (§I: ST-based cores suffer
   "traffic jam around the core … packet loss and longer communication
   delay", while m-routers are "specially designed powerful routers").
   Many simultaneous sources drive one group; the center forwards every
   transit packet through its forwarding engine — a single processor
   for an ordinary core vs the m-router's parallel fabric. *)

let congestion () =
  section "traffic concentration at the center (§I motivation)";
  let spec = Topology.Waxman.generate ~seed:23 ~n:40 () in
  let g0 = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g0 in
  let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let members =
    let rng = Scmp_util.Prng.create 5 in
    Scmp_util.Prng.sample rng 12 40 |> List.filter (fun x -> x <> center)
  in
  (* per-packet forwarding time at the center: 10 ms, i.e. one engine
     sustains 100 pkts/s *)
  let service = 0.010 in
  let run_case processors =
    let g =
      Netgraph.Graph.map_links g0 ~f:(fun l ->
          (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let delivery = Protocols.Delivery.create e in
    let station = Eventsim.Server.create e ~servers:processors in
    Eventsim.Netsim.set_node_processing net center station ~service_time:service;
    let p = Protocols.Scmp_proto.create ~delivery net ~mrouter:center () in
    List.iteri
      (fun i m ->
        Eventsim.Engine.schedule_at e ~time:(0.1 +. (0.2 *. float_of_int i))
          (fun () -> Protocols.Scmp_proto.host_join p ~group:1 m))
      members;
    (* every member is also a speaker: 10 packets each, ~165 pkts/s
       aggregate through the shared tree's root — 1.65x one engine's
       capacity *)
    let seq = ref 0 in
    for round = 0 to 9 do
      List.iteri
        (fun i src ->
          let s = !seq in
          incr seq;
          let at =
            10.0 +. (0.006 *. float_of_int ((round * List.length members) + i))
          in
          Eventsim.Engine.schedule_at e ~time:at (fun () ->
              Protocols.Delivery.expect delivery ~seq:s
                ~members:(List.filter (fun m -> m <> src) members)
                ~sent_at:at;
              Protocols.Scmp_proto.send_data p ~group:1 ~src ~seq:s))
        members
    done;
    Eventsim.Engine.run e;
    (delivery, station)
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "center";
        T.column "max delay (ms)";
        T.column "mean delay (ms)";
        T.column "max queue";
        T.column "forwarded";
      ]
  in
  List.iter
    (fun (name, k) ->
      let delivery, station = run_case k in
      T.add_row tab
        [
          name;
          Printf.sprintf "%.1f" (1000.0 *. Protocols.Delivery.max_delay delivery);
          Printf.sprintf "%.1f" (1000.0 *. Protocols.Delivery.mean_delay delivery);
          string_of_int (Eventsim.Server.max_queue_length station);
          string_of_int (Eventsim.Server.completed station);
        ])
    [
      ("ordinary core (1 engine)", 1);
      ("m-router fabric (4 engines)", 4);
      ("m-router fabric (16 engines)", 16);
    ];
  print_table
    ~title:
"40-node Waxman, 12 members all sending (120 pkts, ~165/s aggregate), 10 ms \
       forwarding per packet at the center"
    tab


let workloads =
  [
    { Workload.name = "fabric"; doc = "service fabric study"; run = (fun _ -> fabric ()) };
    { Workload.name = "multi"; doc = "multi-group study"; run = (fun _ -> multi ()) };
    { Workload.name = "capacity"; doc = "capacity study"; run = (fun _ -> capacity ()) };
    { Workload.name = "congestion"; doc = "congestion study"; run = (fun _ -> congestion ()) };
  ]
