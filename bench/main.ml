(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (§IV) as plain-text series, plus the ablations DESIGN.md
   calls out, best-of-k micro-benchmarks of the core algorithms, and
   the parallel sweep engine's speedup/determinism check.

   Usage:
     dune exec bench/main.exe                 # everything, reduced seeds
     dune exec bench/main.exe -- fig7 --full  # one figure, paper-scale
     dune exec bench/main.exe -- micro --json BENCH.json
     dune exec bench/main.exe -- micro --out runs/r1  # artifact dir

   Workloads live in the w_*.ml modules and are dispatched through the
   {!Workload} registry; unknown commands, unknown flags and malformed
   flag values all exit 2 with usage. See DESIGN.md ("Per-experiment
   index") and EXPERIMENTS.md (paper-vs-measured record). *)

let workloads : Workload.t list =
  W_trees.workloads @ W_protocols.workloads @ W_fabric.workloads
  @ W_resilience.workloads @ W_micro.workloads @ W_exec.workloads

let usage oc =
  Printf.fprintf oc
    "usage: main.exe [WORKLOAD...] [--full] [--ablate] [--csv DIR] [--json \
     PATH] [--jobs N] [--out DIR]\n\nworkloads (default: all):\n";
  List.iter
    (fun (w : Workload.t) ->
      Printf.fprintf oc "  %-12s %s\n" w.Workload.name w.doc)
    workloads;
  Printf.fprintf oc "  %-12s %s\n" "all" "every workload in order";
  Printf.fprintf oc
    "\nflags:\n\
    \  --full       paper-scale seed counts instead of the smoke quota\n\
    \  --ablate     include the candidate-set ablation in fig7\n\
    \  --csv DIR    also write every printed table as CSV into DIR\n\
    \  --json PATH  write the micro/e2e results as a scmp-report/1 file\n\
    \  --jobs N     worker domains for the parallel benches\n\
    \  --out DIR    per-run artifact dir: tables as CSV under DIR/csv,\n\
    \               micro results as DIR/bench.json, flags as DIR/meta.json\n"

let die fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "error: %s\n\n" m;
      usage stderr;
      exit 2)
    fmt

type cli = {
  mutable cmds : string list;  (* reversed *)
  mutable full : bool;
  mutable ablate : bool;
  mutable csv : string option;
  mutable json : string option;
  mutable jobs : int option;
  mutable out : string option;
}

(* Strict left-to-right parse: every unknown flag, unknown workload
   name or malformed flag value dies with usage on exit 2 — a typoed
   "--jbos 4" must never run the full suite with defaults. *)
let parse_cli args =
  let c =
    {
      cmds = [];
      full = false;
      ablate = false;
      csv = None;
      json = None;
      jobs = None;
      out = None;
    }
  in
  let value flag = function
    | v :: rest when String.length v = 0 || v.[0] <> '-' -> (v, rest)
    | _ -> die "%s expects a value" flag
  in
  let rec go = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
      usage stdout;
      exit 0
    | "--full" :: rest ->
      c.full <- true;
      go rest
    | "--ablate" :: rest ->
      c.ablate <- true;
      go rest
    | "--csv" :: rest ->
      let v, rest = value "--csv" rest in
      c.csv <- Some v;
      go rest
    | "--json" :: rest ->
      let v, rest = value "--json" rest in
      c.json <- Some v;
      go rest
    | "--out" :: rest ->
      let v, rest = value "--out" rest in
      c.out <- Some v;
      go rest
    | "--jobs" :: rest ->
      let v, rest = value "--jobs" rest in
      (match int_of_string_opt v with
      | Some j when j >= 1 -> c.jobs <- Some j
      | _ -> die "--jobs expects a positive integer, got %S" v);
      go rest
    | a :: _ when String.length a >= 1 && a.[0] = '-' ->
      die "unknown flag %S" a
    | a :: rest ->
      if a <> "all" && not (List.exists (fun w -> w.Workload.name = a) workloads)
      then die "unknown workload %S" a;
      c.cmds <- a :: c.cmds;
      go rest
  in
  go args;
  c

let mkdir_p dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let () =
  let c = parse_cli (List.tl (Array.to_list Sys.argv)) in
  (* --out DIR: a self-contained artifact directory per run. Contents
     carry no wall-clock stamps, so re-running the same command in the
     same tree reproduces the directory bit-for-bit. *)
  (match c.out with
  | None -> ()
  | Some dir ->
    mkdir_p dir;
    mkdir_p (Filename.concat dir "csv");
    if c.csv = None then c.csv <- Some (Filename.concat dir "csv");
    if c.json = None then c.json <- Some (Filename.concat dir "bench.json"));
  (match c.csv with
  | Some dir ->
    mkdir_p dir;
    Bench_util.csv_dir := Some dir
  | None -> ());
  let ctx =
    {
      Workload.full = c.full;
      ablate = c.ablate;
      jobs =
        (match c.jobs with Some j -> j | None -> Exec.Pool.default_jobs ());
      json = c.json;
    }
  in
  let cmds = match List.rev c.cmds with [] -> [ "all" ] | cs -> cs in
  let run name =
    if name = "all" then
      List.iter (fun (w : Workload.t) -> w.Workload.run ctx) workloads
    else
      (List.find (fun w -> w.Workload.name = name) workloads).Workload.run ctx
  in
  List.iter run cmds;
  match c.out with
  | None -> ()
  | Some dir ->
    let meta =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.String "scmp-bench-meta/1");
          ( "workloads",
            Obs.Json.List (List.map (fun n -> Obs.Json.String n) cmds) );
          ("full", Obs.Json.Bool c.full);
          ("ablate", Obs.Json.Bool c.ablate);
          ("jobs", Obs.Json.Int ctx.Workload.jobs);
        ]
    in
    let path = Filename.concat dir "meta.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Obs.Json.to_string ~pretty:true meta);
        Out_channel.output_char oc '\n')
