(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (§IV) as plain-text series, plus the ablations DESIGN.md
   calls out, best-of-k micro-benchmarks of the core algorithms, and
   the parallel sweep engine's speedup/determinism check.

   Usage:
     dune exec bench/main.exe                 # everything, reduced seeds
     dune exec bench/main.exe -- fig7 --full  # one figure, paper-scale
     dune exec bench/main.exe -- micro        # micro-benches
     dune exec bench/main.exe -- sweep --jobs 4  # parallel sweep bench

   See DESIGN.md ("Per-experiment index") and EXPERIMENTS.md
   (paper-vs-measured record). *)

module T = Scmp_util.Texttab

let pr fmt = Printf.printf fmt

(* With --csv DIR, every printed table is also written as a CSV file
   named after its title. *)
let csv_dir : string option ref = ref None

let slugify s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    (String.lowercase_ascii s)

let print_table ?title tab =
  T.print ?title tab;
  match (!csv_dir, title) with
  | Some dir, Some title ->
    let path = Filename.concat dir (slugify title ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (T.to_csv tab))
  | _ -> ()

let section title =
  pr "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Fig 7: tree delay / tree cost vs group size, three constraint
   levels, on 100-node Waxman graphs. DCDM vs KMB vs SPT (and the
   candidate-set ablation with --ablate). *)

let fig7_group_sizes = [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ]

type fig7_algo = {
  name : string;
  build :
    Netgraph.Apsp.t -> root:int -> members:int list -> bound:Mtree.Bound.t ->
    Mtree.Tree.t;
}

let fig7_algos ~ablate =
  let dcdm ?candidates () =
    {
      name =
        (match candidates with
        | Some Mtree.Dcdm.Least_cost_only -> "DCDM/lc"
        | Some Mtree.Dcdm.Shortest_delay_only -> "DCDM/sl"
        | _ -> "DCDM");
      build =
        (fun apsp ~root ~members ~bound ->
          Mtree.Dcdm.build ?candidates apsp ~root ~bound ~members);
    }
  in
  let kmb =
    {
      name = "KMB";
      build =
        (fun apsp ~root ~members ~bound:_ -> Mtree.Kmb.build apsp ~root ~members);
    }
  in
  let spt =
    {
      name = "SPT";
      build =
        (fun apsp ~root ~members ~bound:_ -> Mtree.Spt.build apsp ~root ~members);
    }
  in
  if ablate then
    [
      dcdm ();
      dcdm ~candidates:Mtree.Dcdm.Least_cost_only ();
      dcdm ~candidates:Mtree.Dcdm.Shortest_delay_only ();
      kmb;
      spt;
    ]
  else [ dcdm (); kmb; spt ]

let fig7 ~seeds ~ablate () =
  section "Fig 7 — multicast tree quality (100-node Waxman, alpha=0.25, beta=0.2)";
  pr "averaged over %d seeds; members joined in random order\n" seeds;
  let algos = fig7_algos ~ablate in
  List.iter
    (fun bound ->
      let columns =
        T.column ~align:T.Left "group size"
        :: List.map (fun a -> T.column a.name) algos
      in
      let delay_tab = T.create columns in
      let cost_tab = T.create columns in
      List.iter
        (fun size ->
          let sums_d = Array.make (List.length algos) 0.0 in
          let sums_c = Array.make (List.length algos) 0.0 in
          for seed = 1 to seeds do
            let spec = Topology.Waxman.generate ~seed ~n:100 () in
            let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
            let root = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
            let rng = Scmp_util.Prng.create (seed * 7919) in
            let members =
              Scmp_util.Prng.sample rng size 100
              |> List.filter (fun x -> x <> root)
            in
            List.iteri
              (fun i a ->
                let tree = a.build apsp ~root ~members ~bound in
                sums_d.(i) <- sums_d.(i) +. Mtree.Eval.tree_delay tree;
                sums_c.(i) <- sums_c.(i) +. Mtree.Eval.tree_cost tree)
              algos
          done;
          let avg s = s /. float_of_int seeds in
          T.add_float_row delay_tab ~decimals:0 (string_of_int size)
            (Array.to_list (Array.map avg sums_d));
          T.add_float_row cost_tab ~decimals:0 (string_of_int size)
            (Array.to_list (Array.map avg sums_c)))
        fig7_group_sizes;
      let level = Mtree.Bound.to_string bound in
      print_table ~title:(Printf.sprintf "Fig 7 tree delay, %s constraint" level)
        delay_tab;
      print_table ~title:(Printf.sprintf "Fig 7 tree cost, %s constraint" level)
        cost_tab)
    Mtree.Bound.all_levels

(* ------------------------------------------------------------------ *)
(* Figs 8 and 9: network-wide protocol comparison. One source at
   1 pkt/s for 30 s; group size 8..40; ARPANET + two random
   topologies. *)

let fig89_group_sizes = [ 8; 12; 16; 20; 24; 28; 32; 36; 40 ]

type net_topology = Arpanet_t | Random_deg3 | Random_deg5

let topology_name = function
  | Arpanet_t -> "ARPANET (48 nodes)"
  | Random_deg3 -> "random, 50 nodes, avg degree 3"
  | Random_deg5 -> "random, 50 nodes, avg degree 5"

let make_spec topo seed =
  match topo with
  | Arpanet_t -> Topology.Arpanet.generate ~seed
  | Random_deg3 -> Topology.Flat_random.generate ~seed ~n:50 ~avg_degree:3.0
  | Random_deg5 -> Topology.Flat_random.generate ~seed ~n:50 ~avg_degree:5.0

(* One averaged experiment cell: protocol x topology x group size.
   Protocols come from the driver registry, so the comparison includes
   every registered driver (pim-sm along the paper's four). *)
let run_cell driver topo ~size ~seeds ~pick =
  let acc = Scmp_util.Stats.create () in
  for seed = 1 to seeds do
    let spec = make_spec topo seed in
    let g = spec.Topology.Spec.graph in
    let n = Netgraph.Graph.node_count g in
    let apsp = Netgraph.Apsp.compute g in
    let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
    let rng = Scmp_util.Prng.create ((seed * 104729) + size) in
    let members =
      Scmp_util.Prng.sample rng (min size (n - 1)) n
      |> List.filter (fun x -> x <> center)
    in
    let source = List.hd members in
    let sc = Protocols.Runner.make ~spec ~center ~source ~members () in
    let r = Protocols.Runner.run driver sc in
    if r.Protocols.Runner.missed > 0 || r.duplicates > 0 || r.spurious > 0 then
      pr "!! %s %s size=%d seed=%d: missed=%d dup=%d spur=%d\n"
        (Protocols.Driver.display driver)
        (topology_name topo) size seed r.missed r.duplicates r.spurious;
    Scmp_util.Stats.add acc (pick r)
  done;
  Scmp_util.Stats.mean acc

let protocol_figure ~title ~seeds ~pick ~decimals () =
  let drivers = Protocols.Driver.all () in
  List.iter
    (fun topo ->
      let tab =
        T.create
          (T.column ~align:T.Left "group size"
          :: List.map (fun d -> T.column (Protocols.Driver.display d)) drivers)
      in
      List.iter
        (fun size ->
          let row =
            List.map (fun d -> run_cell d topo ~size ~seeds ~pick) drivers
          in
          T.add_float_row tab ~decimals (string_of_int size) row)
        fig89_group_sizes;
      print_table ~title:(Printf.sprintf "%s — %s" title (topology_name topo)) tab)
    [ Arpanet_t; Random_deg3; Random_deg5 ]

let fig8 ~seeds () =
  section "Fig 8 — data overhead and protocol overhead vs group size";
  pr "1 source, 1 pkt/s, 30 s; averaged over %d seeds (link-cost units)\n" seeds;
  protocol_figure ~title:"Fig 8(a-c) data overhead" ~seeds
    ~pick:(fun r -> r.Protocols.Runner.data_overhead)
    ~decimals:0 ();
  protocol_figure ~title:"Fig 8(d-f) protocol overhead" ~seeds
    ~pick:(fun r -> r.Protocols.Runner.protocol_overhead)
    ~decimals:0 ();
  protocol_figure ~title:"Fig 8(e,f) log10(protocol overhead)" ~seeds
    ~pick:(fun r -> log10 (Float.max 1.0 r.Protocols.Runner.protocol_overhead))
    ~decimals:2 ()

let fig9 ~seeds () =
  section "Fig 9 — maximum end-to-end delay vs group size (seconds)";
  protocol_figure ~title:"Fig 9 maximum end-to-end delay" ~seeds
    ~pick:(fun r -> r.Protocols.Runner.max_delay)
    ~decimals:4 ()

(* ------------------------------------------------------------------ *)
(* m-router placement study (§IV.A rules). *)

let placement ~seeds () =
  section "m-router placement (§IV.A rules 1-3 vs random)";
  let tab =
    T.create
      [
        T.column ~align:T.Left "placement";
        T.column "mean tree cost";
        T.column "vs rule 1";
      ]
  in
  let spec = Topology.Waxman.generate ~seed:17 ~n:100 () in
  let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
  let score candidate =
    Scmp.Placement.evaluate apsp ~candidate ~bound:Mtree.Bound.Moderate
      ~group_size:20 ~trials:(10 * seeds) ~seed:3
  in
  let rule1 = score (Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay) in
  List.iter
    (fun rule ->
      let s = score (Scmp.Placement.pick apsp rule) in
      T.add_row tab
        [
          Scmp.Placement.rule_name rule;
          Printf.sprintf "%.0f" s;
          Printf.sprintf "%+.1f%%" (100.0 *. ((s /. rule1) -. 1.0));
        ])
    Scmp.Placement.all_rules;
  let rng = Scmp_util.Prng.create 7 in
  let rand_acc = Scmp_util.Stats.create () in
  for _ = 1 to 10 do
    Scmp_util.Stats.add rand_acc (score (Scmp_util.Prng.int rng 100))
  done;
  let s = Scmp_util.Stats.mean rand_acc in
  T.add_row tab
    [
      "random (mean of 10)";
      Printf.sprintf "%.0f" s;
      Printf.sprintf "%+.1f%%" (100.0 *. ((s /. rule1) -. 1.0));
    ];
  print_table tab

(* ------------------------------------------------------------------ *)
(* Fabric validation/ablation: Beneš routing scale and the many-to-many
   merge claims of §II.B. *)

let fabric () =
  section "m-router switching fabric (PN-CCN-DN sandwich, §II.B)";
  let tab =
    T.create
      [
        T.column ~align:T.Left "ports";
        T.column "stages";
        T.column "2x2 elements";
        T.column "perms checked";
        T.column "failures";
      ]
  in
  List.iter
    (fun bits ->
      let n = 1 lsl bits in
      let rng = Scmp_util.Prng.create (1000 + n) in
      let failures = ref 0 in
      let trials = 50 in
      let cfg = ref (Fabric.Benes.identity n) in
      for _ = 1 to trials do
        let p = Array.init n (fun i -> i) in
        Scmp_util.Prng.shuffle rng p;
        cfg := Fabric.Benes.route p;
        if Fabric.Benes.eval !cfg <> p then incr failures
      done;
      T.add_row tab
        [
          string_of_int n;
          string_of_int (Fabric.Benes.depth !cfg);
          string_of_int (Fabric.Benes.element_count !cfg);
          string_of_int trials;
          string_of_int !failures;
        ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  print_table ~title:"Beneš permutation routing (looping algorithm)" tab;
  (* Group churn on a 64-port fabric, verifying isolation after every
     step. *)
  let f = Fabric.Sandwich.create ~ports:64 in
  let rng = Scmp_util.Prng.create 31337 in
  let steps = 500 and violations = ref 0 and opened = ref 0 and merged = ref 0 in
  for step = 1 to steps do
    let gid = 1 + Scmp_util.Prng.int rng 8 in
    (match Scmp_util.Prng.int rng 4 with
    | 0 ->
      (match Fabric.Sandwich.open_group f ~gid ~output:(32 + gid) with
      | Ok () -> incr opened
      | Error _ -> ())
    | 1 ->
      if List.mem gid (Fabric.Sandwich.groups f) then begin
        match
          Fabric.Sandwich.add_source f ~gid ~input:(Scmp_util.Prng.int rng 32)
        with
        | Ok () -> incr merged
        | Error _ -> ()
      end
    | 2 ->
      if List.mem gid (Fabric.Sandwich.groups f) then begin
        match Fabric.Sandwich.sources f gid with
        | [] -> ()
        | input :: _ -> Fabric.Sandwich.remove_source f ~gid ~input
      end
    | _ -> if step mod 7 = 0 then Fabric.Sandwich.close_group f gid);
    match Fabric.Sandwich.self_check f with
    | Ok () -> ()
    | Error _ -> incr violations
  done;
  pr
    "\ngroup churn: %d steps (%d opens, %d source merges) on 64 ports — %d \
     isolation/routing violations\n"
    steps !opened !merged !violations;
  (* the ref [10] self-routing copy network: exactly-the-interval
     delivery at every width *)
  let cn = Fabric.Copynet.create 256 in
  let ctab =
    T.create
      [
        T.column ~align:T.Left "copies";
        T.column "elements used";
        T.column "checked";
        T.column "failures";
      ]
  in
  List.iter
    (fun width ->
      let rng = Scmp_util.Prng.create (3000 + width) in
      let failures = ref 0 and used = ref 0 in
      let trials = 40 in
      for _ = 1 to trials do
        let lo =
          if width = 256 then 0 else Scmp_util.Prng.int rng (256 - width + 1)
        in
        let hi = lo + width - 1 in
        let plan = Fabric.Copynet.route cn ~lo ~hi in
        used := !used + Fabric.Copynet.elements_used plan;
        let out = Fabric.Copynet.eval cn plan in
        Array.iteri
          (fun i got -> if got <> (i >= lo && i <= hi) then incr failures)
          out
      done;
      T.add_row ctab
        [
          string_of_int width;
          string_of_int (!used / trials);
          string_of_int trials;
          string_of_int !failures;
        ])
    [ 1; 4; 16; 64; 256 ];
  print_table ~title:"self-routing copy network (256 ports, interval splitting)" ctab

(* ------------------------------------------------------------------ *)
(* Ablation: BRANCH packets vs always-full-TREE distribution (§III.E's
   "if the change is small, using a TREE packet containing the whole
   tree structure is too expensive"). *)

let branch_ablation ~seeds () =
  section "ablation — BRANCH vs full-TREE distribution (SCMP protocol overhead)";
  let tab =
    T.create
      [
        T.column ~align:T.Left "group size";
        T.column "BRANCH+TREE";
        T.column "always TREE";
        T.column "saving";
      ]
  in
  List.iter
    (fun size ->
      let overhead distribution =
        let acc = Scmp_util.Stats.create () in
        for seed = 1 to seeds do
          let spec = make_spec Random_deg3 seed in
          let g = spec.Topology.Spec.graph in
          let n = Netgraph.Graph.node_count g in
          let apsp = Netgraph.Apsp.compute g in
          let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
          let rng = Scmp_util.Prng.create ((seed * 499) + size) in
          let members =
            Scmp_util.Prng.sample rng (min size (n - 1)) n
            |> List.filter (fun x -> x <> center)
          in
          let source = List.hd members in
          let sc =
            Protocols.Runner.make ~scmp_distribution:distribution ~spec ~center
              ~source ~members ()
          in
          let r =
            Protocols.Runner.run (Protocols.Driver.find_exn "scmp") sc
          in
          Scmp_util.Stats.add acc r.Protocols.Runner.protocol_overhead
        done;
        Scmp_util.Stats.mean acc
      in
      let incr = overhead Protocols.Scmp_proto.Incremental in
      let full = overhead Protocols.Scmp_proto.Always_full_tree in
      T.add_row tab
        [
          string_of_int size;
          Printf.sprintf "%.0f" incr;
          Printf.sprintf "%.0f" full;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (incr /. full)));
        ])
    [ 8; 16; 24; 32; 40 ];
  print_table ~title:"random 50-node topology (avg degree 3)" tab

(* ------------------------------------------------------------------ *)
(* Fault recovery (ours): SCMP through control-plane loss and random
   mid-data link failures — what the reliable transport and the tree
   repair cost, and what delivery ratio they buy. *)

let faults_bench () =
  section "fault recovery — loss, link failures, tree repair";
  let spec = Topology.Flat_random.generate ~seed:4 ~n:50 ~avg_degree:3.0 in
  let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
  let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let rng = Scmp_util.Prng.create 41 in
  let members =
    Scmp_util.Prng.sample rng 12 50 |> List.filter (fun x -> x <> center)
  in
  let base =
    Protocols.Runner.make ~spec ~center ~source:(List.hd members) ~members ()
  in
  let data_end =
    base.Protocols.Runner.data_start
    +. (base.data_interval *. float_of_int base.data_count)
  in
  let run_case ?loss ?loss_class ~fail_count () =
    let faults =
      if fail_count = 0 then []
      else
        Eventsim.Faults.random_link_failures ~seed:11 ~count:fail_count
          ~t0:base.Protocols.Runner.data_start ~t1:data_end
          spec.Topology.Spec.graph
    in
    let sc = { base with Protocols.Runner.loss; loss_class; faults } in
    let report = Obs.Report.create ~name:"bench-faults" () in
    let r =
      Protocols.Runner.run ~report (Protocols.Driver.find_exn "scmp") sc
    in
    let m = Obs.Report.metrics report in
    let c name = Obs.Metrics.counter_value (Obs.Metrics.counter m name) in
    (r, c "scmp/retransmissions", c "scmp/giveups", c "scmp/repair/count")
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "scenario";
        T.column "delivery ratio";
        T.column "dropped";
        T.column "retransmits";
        T.column "give-ups";
        T.column "repairs";
        T.column "proto overhead";
      ]
  in
  List.iter
    (fun (name, loss, loss_class, fail_count) ->
      let r, retx, giveups, repairs = run_case ?loss ?loss_class ~fail_count () in
      T.add_row tab
        [
          name;
          Printf.sprintf "%.4f" r.Protocols.Runner.delivery_ratio;
          string_of_int r.dropped;
          string_of_int retx;
          string_of_int giveups;
          string_of_int repairs;
          Printf.sprintf "%.0f" r.protocol_overhead;
        ])
    [
      ("no faults", None, None, 0);
      ("5% control loss", Some (0.05, 42), Some `Control, 0);
      ("2 random link failures", None, None, 2);
      ("loss + 2 failures", Some (0.05, 42), Some `Control, 2);
    ];
  print_table
    ~title:
      "50-node random (deg 3), 12 members, 30 pkts; failures drawn \
       uniformly over the data phase (seed 11)"
    tab

(* ------------------------------------------------------------------ *)
(* Hot-standby m-router failover (concluding remarks, point 4):
   steady-state cost of the standby and behaviour through a failure. *)

let failover () =
  section "m-router hot standby (concluding remarks)";
  let spec = Topology.Waxman.generate ~seed:77 ~n:40 () in
  let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
  let primary = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let standby0 = Scmp.Placement.pick apsp Scmp.Placement.Max_degree in
  let standby = if standby0 = primary then (primary + 1) mod 40 else standby0 in
  let members =
    List.filter (fun x -> x <> primary && x <> standby) [ 4; 12; 19; 27; 33 ]
  in
  (* A genuinely off-tree source: its packets are encapsulated to the
     m-router (§III.F), so the m-router's death actually interrupts
     delivery. DCDM is invariant under uniform delay scaling, so the
     unscaled tree predicts the scaled one. *)
  let source =
    let tree =
      Mtree.Dcdm.build apsp ~root:primary ~bound:Mtree.Bound.Tightest ~members
    in
    List.find
      (fun x -> (not (Mtree.Tree.on_tree tree x)) && x <> standby)
      (List.init 40 Fun.id)
  in
  let run_case ~with_standby ~fail =
    let g =
      Netgraph.Graph.map_links spec.Topology.Spec.graph ~f:(fun l ->
          (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let delivery = Protocols.Delivery.create e in
    let p =
      if with_standby then
        Protocols.Scmp_proto.create ~delivery ~standby ~heartbeat_interval:0.5
          ~takeover_after:1.5 net ~mrouter:primary ()
      else Protocols.Scmp_proto.create ~delivery net ~mrouter:primary ()
    in
    List.iteri
      (fun i m ->
        Eventsim.Engine.schedule_at e ~time:(0.1 +. (0.2 *. float_of_int i))
          (fun () -> Protocols.Scmp_proto.host_join p ~group:1 m))
      members;
    if fail then
      Eventsim.Engine.schedule_at e ~time:10.0 (fun () ->
          Protocols.Scmp_proto.fail_primary p);
    let src = source in
    let expected = members in
    for seq = 0 to 29 do
      let at = 5.0 +. float_of_int seq in
      Eventsim.Engine.schedule_at e ~time:at (fun () ->
          Protocols.Delivery.expect delivery ~seq ~members:expected ~sent_at:at;
          Protocols.Scmp_proto.send_data p ~group:1 ~src ~seq)
    done;
    Eventsim.Engine.run ~until:40.0 e;
    ( Eventsim.Netsim.control_overhead net,
      Protocols.Delivery.deliveries delivery,
      Protocols.Delivery.missed delivery,
      Protocols.Scmp_proto.standby_took_over p )
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "case";
        T.column "ctl overhead";
        T.column "delivered";
        T.column "missed";
        T.column ~align:T.Left "recovered";
      ]
  in
  let row name (o, d, m, rec_) =
    T.add_row tab
      [
        name;
        Printf.sprintf "%.0f" o;
        string_of_int d;
        string_of_int m;
        (if rec_ then "yes" else "-");
      ]
  in
  row "no standby, no failure" (run_case ~with_standby:false ~fail:false);
  row "standby, no failure" (run_case ~with_standby:true ~fail:false);
  row "no standby, failure@10s" (run_case ~with_standby:false ~fail:true);
  row "standby, failure@10s" (run_case ~with_standby:true ~fail:true);
  T.print
    ~title:
      "40-node Waxman, 5 members, off-tree source, 30 pkts at 1/s from t=5; failure at t=10 (heartbeat 0.5s, takeover window 1.5s)"
    tab

(* ------------------------------------------------------------------ *)
(* Multiple m-routers per domain (§II.A extension): regional homes cut
   both the control path length and the shared-tree cost. *)

let multi () =
  section "multiple m-routers per domain (§II.A extension)";
  let spec = Topology.Waxman.generate ~seed:11 ~n:60 () in
  let g0 = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g0 in
  let tab =
    T.create
      [
        T.column ~align:T.Left "m-routers";
        T.column "mean tree cost";
        T.column "join ctl overhead";
      ]
  in
  let west, east =
    (* split by x coordinate to get two regional anchors *)
    let coords = spec.Topology.Spec.coords in
    let by_x = List.init 60 Fun.id |> List.sort (fun a b ->
        compare (fst coords.(a)) (fst coords.(b))) in
    (List.nth by_x 15, List.nth by_x 44)
  in
  let central = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  (* Two membership patterns: groups spread domain-wide, and regional
     groups whose members cluster in one half of the map. Regional
     homes pay off exactly when groups are regional — and the bench
     shows the domain-wide case too, where a central m-router wins. *)
  let coords = spec.Topology.Spec.coords in
  let by_x =
    List.init 60 Fun.id
    |> List.sort (fun a b -> compare (fst coords.(a)) (fst coords.(b)))
  in
  let halves = (Array.of_list by_x, 30) in
  let sample_members rng ~regional grp mrouters =
    let pool =
      if not regional then List.init 60 Fun.id
      else begin
        let arr, half = halves in
        let side = if grp mod 2 = 0 then Array.sub arr 0 half else Array.sub arr half 30 in
        Array.to_list side
      end
    in
    let pool = List.filter (fun x -> not (List.mem x mrouters)) pool in
    let arr = Array.of_list pool in
    Scmp_util.Prng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 (min 10 (Array.length arr)))
  in
  let nearest_assign mrouters grp_members =
    (* home = m-router with least total delay to the group's members *)
    fun grp ->
      let members = List.assoc grp grp_members in
      List.fold_left
        (fun best m ->
          let score m =
            List.fold_left (fun acc x -> acc +. Netgraph.Apsp.delay apsp m x) 0.0 members
          in
          if score m < score best then m else best)
        (List.hd mrouters) mrouters
  in
  let run_config name ~regional mrouters =
    let g =
      Netgraph.Graph.map_links g0 ~f:(fun l ->
          (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let rng = Scmp_util.Prng.create 99 in
    let groups = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
    let grp_members =
      List.map (fun grp -> (grp, sample_members rng ~regional grp mrouters)) groups
    in
    let m =
      Protocols.Multi.create
        ~assign:(nearest_assign mrouters grp_members)
        net ~mrouters ()
    in
    List.iter
      (fun (grp, members) ->
        List.iter (fun r -> Protocols.Multi.host_join m ~group:grp r) members)
      grp_members;
    Eventsim.Engine.run e;
    let total_cost =
      List.fold_left
        (fun acc grp ->
          match Protocols.Multi.tree m ~group:grp with
          | Some t -> acc +. Mtree.Eval.tree_cost t
          | None -> acc)
        0.0 groups
    in
    T.add_row tab
      [
        name;
        Printf.sprintf "%.0f" (total_cost /. float_of_int (List.length groups));
        Printf.sprintf "%.0f" (Eventsim.Netsim.control_overhead net);
      ]
  in
  run_config "1 central, domain-wide groups" ~regional:false [ central ];
  run_config "2 regional, domain-wide groups" ~regional:false [ west; east ];
  run_config "1 central, regional groups" ~regional:true [ central ];
  run_config "2 regional, regional groups" ~regional:true [ west; east ];
  T.print
    ~title:"60-node Waxman, 8 groups of 10 members; home = nearest m-router"
    tab

(* ------------------------------------------------------------------ *)
(* m-router control-plane capacity (§II.B: "capable of handling
   multiple multicast tasks simultaneously" on multiple processors).
   JOIN requests arrive in a Poisson stream and queue for a processor;
   each costs a fixed 10 ms of tree recomputation + distribution. *)

let capacity () =
  section "m-router processing capacity (§II.B multiprocessor claim)";
  let spec = Topology.Waxman.generate ~seed:19 ~n:50 () in
  let tab =
    T.create
      [
        T.column ~align:T.Left "processors";
        T.column "arrivals/s";
        T.column "joins served";
        T.column "mean wait (ms)";
        T.column "max queue";
      ]
  in
  let service = 0.010 in
  List.iter
    (fun k ->
      List.iter
        (fun rate ->
          let g =
            Netgraph.Graph.map_links spec.Topology.Spec.graph ~f:(fun l ->
                (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
          in
          let e = Eventsim.Engine.create () in
          let net =
            Eventsim.Netsim.create e g ~classify:Protocols.Message.classify
          in
          let station = Eventsim.Server.create e ~servers:k in
          let p =
            Protocols.Scmp_proto.create ~cpu:(station, service) net ~mrouter:0 ()
          in
          let rng = Scmp_util.Prng.create (k * 1000 + rate) in
          (* Poisson joins over 10 s: random router, one of 8 groups. *)
          let rec arrivals at n =
            if at <= 10.0 then begin
              Eventsim.Engine.schedule_at e ~time:at (fun () ->
                  Protocols.Scmp_proto.host_join p
                    ~group:(1 + (n mod 8))
                    (1 + Scmp_util.Prng.int rng 49));
              let gap =
                -.(1.0 /. float_of_int rate)
                *. log (1.0 -. Scmp_util.Prng.float rng 1.0)
              in
              arrivals (at +. gap) (n + 1)
            end
          in
          arrivals 0.05 0;
          Eventsim.Engine.run e;
          let served = Eventsim.Server.completed station in
          let mean_wait =
            if served = 0 then 0.0
            else Eventsim.Server.total_queueing_delay station /. float_of_int served
          in
          T.add_row tab
            [
              string_of_int k;
              string_of_int rate;
              string_of_int served;
              Printf.sprintf "%.2f" (1000.0 *. mean_wait);
              string_of_int (Eventsim.Server.max_queue_length station);
            ])
        [ 50; 90; 150 ])
    [ 1; 2; 4 ];
  T.print
    ~title:"50-node Waxman, 8 groups, 10 ms service per JOIN, 10 s Poisson stream"
    tab

(* ------------------------------------------------------------------ *)
(* Traffic concentration at the center (§I: ST-based cores suffer
   "traffic jam around the core … packet loss and longer communication
   delay", while m-routers are "specially designed powerful routers").
   Many simultaneous sources drive one group; the center forwards every
   transit packet through its forwarding engine — a single processor
   for an ordinary core vs the m-router's parallel fabric. *)

let congestion () =
  section "traffic concentration at the center (§I motivation)";
  let spec = Topology.Waxman.generate ~seed:23 ~n:40 () in
  let g0 = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g0 in
  let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let members =
    let rng = Scmp_util.Prng.create 5 in
    Scmp_util.Prng.sample rng 12 40 |> List.filter (fun x -> x <> center)
  in
  (* per-packet forwarding time at the center: 10 ms, i.e. one engine
     sustains 100 pkts/s *)
  let service = 0.010 in
  let run_case processors =
    let g =
      Netgraph.Graph.map_links g0 ~f:(fun l ->
          (l.Netgraph.Graph.delay *. 3e-6, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let delivery = Protocols.Delivery.create e in
    let station = Eventsim.Server.create e ~servers:processors in
    Eventsim.Netsim.set_node_processing net center station ~service_time:service;
    let p = Protocols.Scmp_proto.create ~delivery net ~mrouter:center () in
    List.iteri
      (fun i m ->
        Eventsim.Engine.schedule_at e ~time:(0.1 +. (0.2 *. float_of_int i))
          (fun () -> Protocols.Scmp_proto.host_join p ~group:1 m))
      members;
    (* every member is also a speaker: 10 packets each, ~165 pkts/s
       aggregate through the shared tree's root — 1.65x one engine's
       capacity *)
    let seq = ref 0 in
    for round = 0 to 9 do
      List.iteri
        (fun i src ->
          let s = !seq in
          incr seq;
          let at =
            10.0 +. (0.006 *. float_of_int ((round * List.length members) + i))
          in
          Eventsim.Engine.schedule_at e ~time:at (fun () ->
              Protocols.Delivery.expect delivery ~seq:s
                ~members:(List.filter (fun m -> m <> src) members)
                ~sent_at:at;
              Protocols.Scmp_proto.send_data p ~group:1 ~src ~seq:s))
        members
    done;
    Eventsim.Engine.run e;
    (delivery, station)
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "center";
        T.column "max delay (ms)";
        T.column "mean delay (ms)";
        T.column "max queue";
        T.column "forwarded";
      ]
  in
  List.iter
    (fun (name, k) ->
      let delivery, station = run_case k in
      T.add_row tab
        [
          name;
          Printf.sprintf "%.1f" (1000.0 *. Protocols.Delivery.max_delay delivery);
          Printf.sprintf "%.1f" (1000.0 *. Protocols.Delivery.mean_delay delivery);
          string_of_int (Eventsim.Server.max_queue_length station);
          string_of_int (Eventsim.Server.completed station);
        ])
    [
      ("ordinary core (1 engine)", 1);
      ("m-router fabric (4 engines)", 4);
      ("m-router fabric (16 engines)", 16);
    ];
  print_table
    ~title:
"40-node Waxman, 12 members all sending (120 pkts, ~165/s aggregate), 10 ms \
       forwarding per packet at the center"
    tab

(* ------------------------------------------------------------------ *)
(* Extension baseline: PIM-SM with SPT switchover vs the paper's
   shared-tree protocols. First packets ride the unidirectional RP tree
   (register detour); the switchover buys SPT delay afterwards. *)

let pimsm () =
  section "extension — PIM-SM with SPT switchover";
  let spec = Topology.Flat_random.generate ~seed:4 ~n:50 ~avg_degree:3.0 in
  let g0 = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g0 in
  let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let rng = Scmp_util.Prng.create 41 in
  let members =
    Scmp_util.Prng.sample rng 12 50 |> List.filter (fun x -> x <> center)
  in
  (* an off-tree source maximizes the register/encap contrast *)
  let source =
    List.find (fun x -> (not (List.mem x members)) && x <> center)
      (List.init 50 Fun.id)
  in
  let scale = 3e-6 in
  let run_case name instantiate =
    let g =
      Netgraph.Graph.map_links g0 ~f:(fun l ->
          (l.Netgraph.Graph.delay *. scale, l.Netgraph.Graph.cost))
    in
    let e = Eventsim.Engine.create () in
    let net = Eventsim.Netsim.create e g ~classify:Protocols.Message.classify in
    let delivery = Protocols.Delivery.create e in
    let send = instantiate e net delivery in
    for seq = 0 to 19 do
      let at = 10.0 +. float_of_int seq in
      Eventsim.Engine.schedule_at e ~time:at (fun () ->
          Protocols.Delivery.expect delivery ~seq ~members ~sent_at:at;
          send ~seq)
    done;
    Eventsim.Engine.run e;
    let delays = Protocols.Delivery.delays delivery in
    let dmax = List.fold_left Float.max 0.0 delays in
    let dmin = List.fold_left Float.min infinity delays in
    (name, dmax, dmin,
     Eventsim.Netsim.data_overhead net /. 20.0,
     Protocols.Delivery.missed delivery + Protocols.Delivery.duplicates delivery)
  in
  let join_all e join =
    List.iteri
      (fun i m ->
        Eventsim.Engine.schedule_at e ~time:(0.1 +. (0.2 *. float_of_int i))
          (fun () -> join m))
      members
  in
  let cases =
    [
      run_case "PIM-SM (switchover)" (fun e net delivery ->
          let p = Protocols.Pim_sm.create ~delivery net ~rp:center () in
          join_all e (fun m -> Protocols.Pim_sm.host_join p ~group:1 m);
          fun ~seq -> Protocols.Pim_sm.send_data p ~group:1 ~src:source ~seq);
      run_case "PIM-SM (no switchover)" (fun e net delivery ->
          let p =
            Protocols.Pim_sm.create ~delivery ~spt_switchover:false net ~rp:center ()
          in
          join_all e (fun m -> Protocols.Pim_sm.host_join p ~group:1 m);
          fun ~seq -> Protocols.Pim_sm.send_data p ~group:1 ~src:source ~seq);
      run_case "CBT" (fun e net delivery ->
          let p = Protocols.Cbt.create ~delivery net ~core:center () in
          join_all e (fun m -> Protocols.Cbt.host_join p ~group:1 m);
          fun ~seq -> Protocols.Cbt.send_data p ~group:1 ~src:source ~seq);
      run_case "SCMP" (fun e net delivery ->
          let p = Protocols.Scmp_proto.create ~delivery net ~mrouter:center () in
          join_all e (fun m -> Protocols.Scmp_proto.host_join p ~group:1 m);
          fun ~seq -> Protocols.Scmp_proto.send_data p ~group:1 ~src:source ~seq);
    ]
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "protocol";
        T.column "first-pkt max delay (ms)";
        T.column "steady min delay (ms)";
        T.column "data overhead/pkt";
        T.column "anomalies";
      ]
  in
  List.iter
    (fun (name, dmax, dmin, per_pkt, bad) ->
      T.add_row tab
        [
          name;
          Printf.sprintf "%.2f" (1000.0 *. dmax);
          Printf.sprintf "%.2f" (1000.0 *. dmin);
          Printf.sprintf "%.0f" per_pkt;
          string_of_int bad;
        ])
    cases;
  print_table
    ~title:"50-node random (deg 3), 12 members, off-tree source, 20 pkts at 1/s"
    tab

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the core algorithms (best-of-k batches), plus
   one end-to-end runner throughput measurement. With --json PATH the
   results are also written as a scmp-report/1 document (BENCH.json —
   the perf baseline future PRs diff against). All numbers here are
   wall-clock by nature, so the report flags every metric [wallclock]. *)

(* ------------------------------------------------------------------ *)
(* Demand-driven routing cache: cold/warm query cost, and reconvergence
   under a fault schedule — incremental invalidation vs the eager
   recompute-every-source scheme it replaced. *)

let routing_bench () =
  section "routing cache — demand-driven SPTs, incremental reconvergence";
  let spec = Topology.Waxman.generate ~seed:7 ~n:100 () in
  let g = spec.Topology.Spec.graph in
  let n = Netgraph.Graph.node_count g in
  let mk_net () =
    let engine = Eventsim.Engine.create () in
    (engine, Eventsim.Netsim.create engine g ~classify:(fun (_ : unit) -> `Data))
  in
  (* cold vs warm: the first query per source pays one Dijkstra, the
     second is a table read *)
  let _, net = mk_net () in
  let sweep () =
    let acc = ref 0.0 in
    for s = 0 to n - 1 do
      acc :=
        !acc
        +. Eventsim.Routes.distance
             (Eventsim.Netsim.routes net)
             ~src:s
             ~dst:((s + (n / 2)) mod n)
    done;
    !acc
  in
  let cold_sum, cold_s = Obs.Clock.time sweep in
  let warm_sum, warm_s = Obs.Clock.time sweep in
  assert (cold_sum = warm_sum);
  let tab =
    T.create
      [
        T.column ~align:T.Left "phase";
        T.column "queries";
        T.column "SPTs built";
        T.column "ns/query";
      ]
  in
  let per_query s = s /. float_of_int n *. 1e9 in
  T.add_row tab
    [ "cold (one sweep, all sources)"; string_of_int n; string_of_int n;
      Printf.sprintf "%.0f" (per_query cold_s) ];
  T.add_row tab
    [ "warm (same sweep again)"; string_of_int n; "0";
      Printf.sprintf "%.0f" (per_query warm_s) ];
  print_table ~title:"100-node Waxman (seed 7), one distance query per source"
    tab;
  (* reconvergence under churn: 10 link failures (each restored 3 s
     later) drawn over [1, 30); after every topology change a 32-pair
     query workload fires. The eager scheme is the seed implementation:
     rebuild a live-graph copy and recompute all n sources per change. *)
  let faults_for () =
    Eventsim.Faults.random_link_failures ~seed:13 ~count:10 ~t0:1.0 ~t1:30.0
      ~restore_after:3.0 g
  in
  let run_scheme ~eager =
    let engine, net = mk_net () in
    let qrng = Scmp_util.Prng.create 99 in
    let eager_built = ref 0 in
    let eager_tbl = ref None in
    let rebuild_eager () =
      let r = Eventsim.Routes.compute (Eventsim.Netsim.live_graph net) in
      for s = 0 to n - 1 do
        ignore (Eventsim.Routes.spt r ~src:s)
      done;
      eager_built := !eager_built + n;
      eager_tbl := Some r
    in
    if eager then begin
      rebuild_eager ();
      Eventsim.Netsim.on_topology_change net rebuild_eager
    end;
    let query () =
      for _ = 1 to 32 do
        let src = Scmp_util.Prng.int qrng n
        and dst = Scmp_util.Prng.int qrng n in
        match !eager_tbl with
        | Some r -> ignore (Eventsim.Routes.distance r ~src ~dst)
        | None ->
          ignore
            (Eventsim.Routes.distance (Eventsim.Netsim.routes net) ~src ~dst)
      done
    in
    Eventsim.Netsim.on_topology_change net query;
    ignore (Eventsim.Faults.install net (faults_for ()));
    query ();
    let (), wall = Obs.Clock.time (fun () -> Eventsim.Engine.run engine) in
    let epochs = Eventsim.Netsim.routes_epoch net in
    let built, invalidated =
      if eager then (!eager_built, n * epochs)
      else
        ( Eventsim.Routes.computed (Eventsim.Netsim.routes net),
          Eventsim.Routes.invalidated (Eventsim.Netsim.routes net) )
    in
    let events = Eventsim.Engine.events_executed engine in
    (epochs, built, invalidated, events, wall)
  in
  let tab =
    T.create
      [
        T.column ~align:T.Left "scheme";
        T.column "reconvergences";
        T.column "SPTs built";
        T.column "invalidated";
        T.column "ns/event";
      ]
  in
  let add name (epochs, built, invalidated, events, wall) =
    T.add_row tab
      [
        name;
        string_of_int epochs;
        string_of_int built;
        string_of_int invalidated;
        Printf.sprintf "%.0f" (wall /. float_of_int (max events 1) *. 1e9);
      ]
  in
  add "eager (recompute all sources)" (run_scheme ~eager:true);
  add "lazy (incremental invalidation)" (run_scheme ~eager:false);
  print_table
    ~title:
      "10 link failures + restores (seed 13) over 30 s, 32 queries per \
       reconvergence; eager cost is n SPTs per epoch plus the initial table"
    tab

(* Best-of-k batched timing. Single-shot means are noisy (GC pauses,
   scheduler preemption land in the sample); instead each workload is
   calibrated to a batch long enough to swamp timer resolution, k
   batches are timed, and the minimum per-run time is reported — the
   standard estimator for "how fast does this code run undisturbed". *)
let calibrate_runs ~min_batch_s f =
  let rec go runs =
    let (), s =
      Obs.Clock.time (fun () ->
          for _ = 1 to runs do
            ignore (f ())
          done)
    in
    if s >= min_batch_s || runs >= 1_000_000 then runs
    else
      let scale =
        if s <= 0.0 then 16.0 else Float.min 16.0 (min_batch_s /. s *. 1.25)
      in
      go (max (runs + 1) (int_of_float (float_of_int runs *. scale)))
  in
  go 1

let best_of_ns ?(k = 5) ?(min_batch_s = 2e-3) f =
  let runs = calibrate_runs ~min_batch_s f in
  let best = ref infinity in
  for _ = 1 to k do
    let (), s =
      Obs.Clock.time (fun () ->
          for _ = 1 to runs do
            ignore (f ())
          done)
    in
    let per = s /. float_of_int runs in
    if per < !best then best := per
  done;
  !best *. 1e9

(* Median-of-ratios A/B timing: k rounds of adjacent (fa, fb) batches,
   each yielding one fb/fa per-run ratio. The host's speed moves by tens
   of percent between bench invocations — and not uniformly: a
   pointer-chasing workload degrades more under memory contention than
   an array-walking one — so ns figures recorded by separate runs do
   not divide into a meaningful ratio. Adjacent batches see the same
   host conditions, and the median discards the rounds a phase change
   lands in the middle of. *)
let paired_ratio ?(k = 9) ?(min_batch_s = 2e-3) fa fb =
  let runs_a = calibrate_runs ~min_batch_s fa in
  let runs_b = calibrate_runs ~min_batch_s fb in
  let ratios =
    Array.init k (fun _ ->
        let (), sa =
          Obs.Clock.time (fun () ->
              for _ = 1 to runs_a do
                ignore (fa ())
              done)
        in
        let (), sb =
          Obs.Clock.time (fun () ->
              for _ = 1 to runs_b do
                ignore (fb ())
              done)
        in
        sb /. float_of_int runs_b /. (sa /. float_of_int runs_a))
  in
  Array.sort compare ratios;
  ratios.(k / 2)

let micro ?json ~full ~jobs () =
  section "micro-benchmarks (best-of-k batches)";
  let spec = Topology.Waxman.generate ~seed:5 ~n:100 () in
  let g = spec.Topology.Spec.graph in
  let apsp = Netgraph.Apsp.compute g in
  let rng = Scmp_util.Prng.create 9 in
  let members =
    Scmp_util.Prng.sample rng 30 100 |> List.filter (fun x -> x <> 0)
  in
  let tree = Mtree.Dcdm.build apsp ~root:0 ~bound:Mtree.Bound.Moderate ~members in
  let packet =
    Protocols.Tree_packet.of_tree tree ~at:(List.hd (Mtree.Tree.children tree 0))
  in
  let words = Protocols.Tree_packet.encode packet in
  let perm =
    let p = Array.init 64 (fun i -> i) in
    Scmp_util.Prng.shuffle rng p;
    p
  in
  let ws = Netgraph.Dijkstra.create_workspace () in
  let g1k =
    (Topology.Waxman.generate ~seed:5 ~n:1000 ()).Topology.Spec.graph
  in
  let ws1k = Netgraph.Dijkstra.create_workspace () in
  let links1k =
    let acc = ref [] in
    Netgraph.Graph.iter_links g1k (fun l ->
        acc :=
          (l.Netgraph.Graph.u, l.Netgraph.Graph.v, l.Netgraph.Graph.delay,
           l.Netgraph.Graph.cost)
          :: !acc);
    List.rev !acc
  in
  let n1k = Netgraph.Graph.node_count g1k in
  (* Pre-CSR reference: the seed implementation's Dijkstra, preserved
     verbatim in shape — adjacency lists of (neighbor, delay, cost)
     tuples, a binary {!Scmp_util.Heap} frontier, fresh arrays per run.
     Timed as dijkstra-100-ref so check.sh can gate the CSR+radix path
     against the algorithm it replaced on the same machine, immune to
     host speed drift between bench runs. *)
  let ref_adj =
    let n = Netgraph.Graph.node_count g in
    let adj = Array.make n [] in
    Netgraph.Graph.iter_links g (fun l ->
        let u = l.Netgraph.Graph.u and v = l.Netgraph.Graph.v in
        let delay = l.Netgraph.Graph.delay and cost = l.Netgraph.Graph.cost in
        adj.(u) <- adj.(u) @ [ (v, delay, cost) ];
        adj.(v) <- adj.(v) @ [ (u, delay, cost) ]);
    adj
  in
  let ref_iter_neighbors adj x f =
    List.iter (fun (y, d, c) -> f y ~delay:d ~cost:c) adj.(x)
  in
  let dijkstra_ref ?node_ok ?edge_ok adj ~metric ~source =
    (* Like the seed, filters default to always-true closures invoked
       per node and per edge — plain runs paid that indirection too. *)
    let node_ok = match node_ok with None -> fun _ -> true | Some f -> f in
    let edge_ok = match edge_ok with None -> fun _ _ -> true | Some f -> f in
    let n = Array.length adj in
    let dist = Array.make n infinity in
    let pred = Array.make n (-1) in
    let other = Array.make n infinity in
    let settled = Array.make n false in
    let heap = Scmp_util.Heap.create ~capacity:n () in
    dist.(source) <- 0.0;
    other.(source) <- 0.0;
    Scmp_util.Heap.add heap ~key:0.0 source;
    let rec drain () =
      match Scmp_util.Heap.pop heap with
      | None -> ()
      | Some (d, x) ->
        if not settled.(x) then begin
          settled.(x) <- true;
          if node_ok x then
            ref_iter_neighbors adj x (fun y ~delay ~cost ->
                if node_ok y && edge_ok x y then begin
                  let w, wo =
                    match metric with
                    | Netgraph.Dijkstra.Delay -> (delay, cost)
                    | Netgraph.Dijkstra.Cost -> (cost, delay)
                  in
                  let nd = d +. w in
                  if nd < dist.(y) then begin
                    dist.(y) <- nd;
                    pred.(y) <- x;
                    other.(y) <- other.(x) +. wo;
                    Scmp_util.Heap.add heap ~key:nd y
                  end
                end)
        end;
        drain ()
    in
    drain ();
    dist
  in
  let workloads =
    [
      ( "dijkstra-100",
        fun () ->
          let r =
            Netgraph.Dijkstra.run ~ws g ~metric:Netgraph.Dijkstra.Delay
              ~source:0
          in
          Netgraph.Dijkstra.recycle ws r );
      ( "dijkstra-100-ref",
        fun () ->
          ignore
            (dijkstra_ref ref_adj ~metric:Netgraph.Dijkstra.Delay ~source:0) );
      ( "dijkstra-1000",
        fun () ->
          let r =
            Netgraph.Dijkstra.run ~ws:ws1k g1k ~metric:Netgraph.Dijkstra.Delay
              ~source:0
          in
          Netgraph.Dijkstra.recycle ws1k r );
      ( "freeze-1000",
        fun () ->
          let b = Netgraph.Graph.Builder.create n1k in
          List.iter
            (fun (u, v, delay, cost) ->
              Netgraph.Graph.Builder.add_link b u v ~delay ~cost)
            links1k;
          ignore (Netgraph.Graph.Builder.freeze b) );
      ( "dcdm-build-30",
        fun () ->
          ignore
            (Mtree.Dcdm.build apsp ~root:0 ~bound:Mtree.Bound.Moderate ~members)
      );
      ("kmb-build-30", fun () -> ignore (Mtree.Kmb.build apsp ~root:0 ~members));
      ("spt-build-30", fun () -> ignore (Mtree.Spt.build apsp ~root:0 ~members));
      ("benes-route-64", fun () -> ignore (Fabric.Benes.route perm));
      ( "tree-packet-roundtrip",
        fun () -> ignore (Protocols.Tree_packet.decode words) );
    ]
  in
  (* reduced scale by default (the check.sh smoke step); --full takes
     more and longer batches *)
  let k, min_batch_s = if full then (9, 10e-3) else (5, 2e-3) in
  let rows =
    List.map (fun (name, f) -> ("scmp/" ^ name, best_of_ns ~k ~min_batch_s f))
      workloads
  in
  let rows = List.sort compare rows in
  List.iter (fun (name, est) -> pr "%-34s %14.1f ns/run\n" name est) rows;
  (* The perf-gate number for check.sh: how much faster the CSR+radix
     Dijkstra is than the preserved pre-CSR reference, measured as
     interleaved batches so the ratio survives host speed drift. *)
  let dij_speedup =
    paired_ratio
      ~k:(if full then 11 else 9)
      ~min_batch_s
      (fun () ->
        let r =
          Netgraph.Dijkstra.run ~ws g ~metric:Netgraph.Dijkstra.Delay
            ~source:0
        in
        Netgraph.Dijkstra.recycle ws r)
      (fun () ->
        ignore (dijkstra_ref ref_adj ~metric:Netgraph.Dijkstra.Delay ~source:0))
  in
  pr "%-34s %14.2f x (ref / csr, paired batches)\n" "scmp/dijkstra-100-speedup"
    dij_speedup;
  (* End-to-end throughput: one full SCMP runner scenario, timed. *)
  let e2e_driver = Protocols.Driver.find_exn "scmp" in
  let e2e_spec = Topology.Flat_random.generate ~seed:4 ~n:50 ~avg_degree:3.0 in
  let e2e_apsp = Netgraph.Apsp.compute e2e_spec.Topology.Spec.graph in
  let center = Scmp.Placement.pick e2e_apsp Scmp.Placement.Min_avg_delay in
  let e2e_members =
    Scmp_util.Prng.sample (Scmp_util.Prng.create 23) 16 50
    |> List.filter (fun x -> x <> center)
  in
  let sc =
    Protocols.Runner.make ~spec:e2e_spec ~center
      ~source:(List.hd e2e_members) ~members:e2e_members ()
  in
  let e2e_report = Obs.Report.create ~name:"bench-e2e" () in
  let r, e2e_wall =
    Obs.Clock.time (fun () ->
        Protocols.Runner.run ~report:e2e_report e2e_driver sc)
  in
  let events =
    match
      Obs.Json.(
        match Obs.Metrics.to_json (Obs.Report.metrics e2e_report) with
        | Obj kvs -> List.assoc_opt "engine/events_executed" kvs
        | _ -> None)
    with
    | Some (Obs.Json.Int n) -> n
    | _ -> 0
  in
  pr "\nend-to-end (scmp, 50-node random deg 3, 16 members, 30 pkts):\n";
  pr "%-34s %14.3f ms\n" "wall time" (1000.0 *. e2e_wall);
  pr "%-34s %14.0f events/s\n" "engine throughput"
    (float_of_int events /. e2e_wall);
  pr "%-34s %14d delivered\n" "deliveries" r.Protocols.Runner.deliveries;
  match json with
  | None -> ()
  | Some path ->
    let rep = Obs.Report.create ~name:"bench-micro" () in
    Obs.Report.set_meta rep "kind" (Obs.Json.String "micro");
    Obs.Report.set_meta rep "full" (Obs.Json.Bool full);
    Obs.Report.set_meta rep "jobs" (Obs.Json.Int jobs);
    let m = Obs.Report.metrics rep in
    let wall_gauge name v =
      Obs.Metrics.set (Obs.Metrics.gauge ~wallclock:true m name) v
    in
    List.iter
      (fun (name, est) ->
        (* bechamel names tests "scmp/<name>" *)
        let key =
          match String.index_opt name '/' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name
        in
        wall_gauge (Printf.sprintf "micro/%s/ns_per_run" key) est)
      rows;
    wall_gauge "micro/dijkstra-100-speedup/x" dij_speedup;
    wall_gauge "e2e/scmp/wall_s" e2e_wall;
    wall_gauge "e2e/scmp/events_per_s" (float_of_int events /. e2e_wall);
    wall_gauge "e2e/scmp/deliveries_per_s"
      (float_of_int r.Protocols.Runner.deliveries /. e2e_wall);
    Obs.Metrics.set_counter
      (Obs.Metrics.counter m "e2e/scmp/deliveries")
      r.Protocols.Runner.deliveries;
    Obs.Metrics.set_counter (Obs.Metrics.counter m "e2e/scmp/events") events;
    (match Obs.Report.write ~pretty:true rep ~path with
    | Ok () -> pr "\nbench report written to %s\n" path
    | Error msg -> pr "\n!! could not write %s: %s\n" path msg)

(* ------------------------------------------------------------------ *)
(* Parallel sweep engine: the same grid on 1 worker and on --jobs
   workers, checking that the merged reports are byte-identical and
   reporting the observed speedup. *)

let sweep_bench ~full ~jobs () =
  section "parallel sweep engine (Exec.Sweep)";
  let spec =
    if full then
      Exec.Sweep.make
        ~drivers:[ "scmp"; "cbt"; "dvmrp"; "mospf"; "pim-sm" ]
        ~topos:[ Exec.Sweep.Random3 50; Exec.Sweep.Arpanet ]
        ~group_sizes:[ 8; 16; 24 ] ~seeds:[ 1; 2 ] ()
    else
      Exec.Sweep.make ~packets:10 ~drivers:[ "scmp"; "cbt" ]
        ~topos:[ Exec.Sweep.Random3 30 ]
        ~group_sizes:[ 8; 16 ] ~seeds:[ 1 ] ()
  in
  let run_with jobs =
    match Exec.Sweep.run ~jobs spec with
    | Ok o -> o
    | Error msg -> failwith ("sweep bench: " ^ msg)
  in
  let seq = run_with 1 in
  let par = run_with jobs in
  let tab =
    T.create
      [
        T.column ~align:T.Left "jobs";
        T.column "cells";
        T.column "wall (s)";
        T.column "cells/s";
        T.column "speedup";
      ]
  in
  let row (o : Exec.Sweep.outcome) =
    T.add_row tab
      [
        string_of_int o.jobs_used;
        string_of_int (List.length o.cell_results);
        Printf.sprintf "%.3f" o.wall_s;
        Printf.sprintf "%.1f" (float_of_int (List.length o.cell_results) /. o.wall_s);
        Printf.sprintf "%.2fx" (o.seq_estimate_s /. o.wall_s);
      ]
  in
  row seq;
  row par;
  print_table
    ~title:
      (Printf.sprintf "%d cells (%s)"
         (List.length (Exec.Sweep.cells spec))
         (String.concat ", " spec.Exec.Sweep.drivers))
    tab;
  let identical =
    Obs.Report.to_string ~wallclock:false seq.Exec.Sweep.report
    = Obs.Report.to_string ~wallclock:false par.Exec.Sweep.report
  in
  pr "merged reports byte-identical across jobs: %s\n"
    (if identical then "yes" else "NO — DETERMINISM BUG");
  if not identical then exit 1

(* ------------------------------------------------------------------ *)

let chaos_bench ~full ~jobs () =
  section "chaos campaigns (Exec.Chaos) — seeded fault programs, invariants on";
  let spec =
    if full then
      Exec.Chaos.make ~packets:12 ~group_size:8 ~seed:1
        ~drivers:[ "scmp"; "cbt"; "dvmrp"; "mospf"; "pim-sm" ]
        ~topos:[ Exec.Sweep.Waxman 40; Exec.Sweep.Random3 30 ]
        ~trials:40 ()
    else
      Exec.Chaos.make ~packets:10 ~group_size:6 ~seed:1 ~drivers:[ "scmp" ]
        ~topos:[ Exec.Sweep.Waxman 30 ] ~trials:15 ()
  in
  let run_with jobs =
    match Exec.Chaos.run ~jobs spec with
    | Ok o -> o
    | Error msg -> failwith ("chaos bench: " ^ msg)
  in
  let seq = run_with 1 in
  let par = run_with jobs in
  let tab =
    T.create
      [
        T.column ~align:T.Left "jobs";
        T.column "trials";
        T.column "violations";
        T.column "blackout p50 (s)";
        T.column "blackout p95 (s)";
        T.column "wall (s)";
      ]
  in
  let row (o : Exec.Chaos.outcome) =
    let pct p =
      if o.blackouts = [] then "-"
      else Printf.sprintf "%.3f" (Scmp_util.Stats.percentile_l p o.blackouts)
    in
    T.add_row tab
      [
        string_of_int o.jobs_used;
        string_of_int (List.length o.results);
        string_of_int (List.length o.violations);
        pct 50.0;
        pct 95.0;
        Printf.sprintf "%.3f" o.wall_s;
      ]
  in
  row seq;
  row par;
  print_table
    ~title:
      (Printf.sprintf "%d trials (%s)"
         (List.length (Exec.Chaos.plan spec))
         (String.concat ", " spec.Exec.Chaos.drivers))
    tab;
  let identical =
    Obs.Report.to_string ~wallclock:false seq.Exec.Chaos.report
    = Obs.Report.to_string ~wallclock:false par.Exec.Chaos.report
  in
  pr "campaign reports byte-identical across jobs: %s\n"
    (if identical then "yes" else "NO — DETERMINISM BUG");
  if not identical then exit 1;
  if seq.Exec.Chaos.violations <> [] then begin
    List.iter
      (fun (v : Exec.Chaos.violation) ->
        pr "VIOLATION %s: %s\n  minimal: %s\n"
          (Exec.Chaos.trial_name v.Exec.Chaos.v_trial)
          v.Exec.Chaos.message
          (Exec.Chaos.program_to_string v.Exec.Chaos.minimal))
      seq.Exec.Chaos.violations;
    exit 1
  end

let usage () =
  print_endline
    "usage: main.exe \
     [fig7|fig8|fig9|placement|fabric|branch|faults|failover|multi|capacity|congestion|pimsm|routing|micro|sweep|chaos|all] \
     [--full] [--ablate] [--csv DIR] [--json PATH] [--jobs N]";
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let ablate = List.mem "--ablate" args in
  (* --csv DIR: also emit every table as CSV into DIR *)
  let rec find_opt_arg flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find_opt_arg flag rest
    | [] -> None
  in
  (match find_opt_arg "--csv" args with
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    csv_dir := Some dir
  | None -> ());
  (* --json PATH: write the micro/e2e results as a scmp-report/1 file *)
  let json = find_opt_arg "--json" args in
  (* --jobs N: worker count for the parallel sweep bench (and recorded
     in the BENCH.json meta) *)
  let jobs =
    match find_opt_arg "--jobs" args with
    | None -> Exec.Pool.default_jobs ()
    | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | _ ->
        pr "--jobs expects a positive integer, got %S\n" v;
        usage ())
  in
  let rec strip_flags = function
    | "--csv" :: _ :: rest -> strip_flags rest
    | "--json" :: _ :: rest -> strip_flags rest
    | "--jobs" :: _ :: rest -> strip_flags rest
    | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" ->
      strip_flags rest
    | a :: rest -> a :: strip_flags rest
    | [] -> []
  in
  let cmds = strip_flags args in
  let tree_seeds = if full then 10 else 3 in
  let net_seeds = if full then 10 else 2 in
  let run = function
    | "fig7" -> fig7 ~seeds:tree_seeds ~ablate ()
    | "fig8" -> fig8 ~seeds:net_seeds ()
    | "fig9" -> fig9 ~seeds:net_seeds ()
    | "placement" -> placement ~seeds:(if full then 3 else 1) ()
    | "fabric" -> fabric ()
    | "branch" -> branch_ablation ~seeds:net_seeds ()
    | "faults" -> faults_bench ()
    | "failover" -> failover ()
    | "multi" -> multi ()
    | "capacity" -> capacity ()
    | "congestion" -> congestion ()
    | "pimsm" -> pimsm ()
    | "routing" -> routing_bench ()
    | "micro" -> micro ?json ~full ~jobs ()
    | "sweep" -> sweep_bench ~full ~jobs ()
    | "chaos" -> chaos_bench ~full ~jobs ()
    | "all" ->
      fig7 ~seeds:tree_seeds ~ablate ();
      fig8 ~seeds:net_seeds ();
      fig9 ~seeds:net_seeds ();
      placement ~seeds:(if full then 3 else 1) ();
      fabric ();
      branch_ablation ~seeds:net_seeds ();
      faults_bench ();
      failover ();
      multi ();
      capacity ();
      congestion ();
      pimsm ();
      routing_bench ();
      micro ?json ~full ~jobs ();
      sweep_bench ~full ~jobs ();
      chaos_bench ~full ~jobs ()
    | other ->
      pr "unknown command %S\n" other;
      usage ()
  in
  match cmds with [] -> run "all" | cs -> List.iter run cs
