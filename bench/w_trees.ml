(* Tree-construction workloads: fig 7 and the branch-candidate ablation. *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* Fig 7: tree delay / tree cost vs group size, three constraint
   levels, on 100-node Waxman graphs. DCDM vs KMB vs SPT (and the
   candidate-set ablation with --ablate). *)

let fig7_group_sizes = [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ]

type fig7_algo = {
  name : string;
  build :
    Netgraph.Apsp.t -> root:int -> members:int list -> bound:Mtree.Bound.t ->
    Mtree.Tree.t;
}

let fig7_algos ~ablate =
  let dcdm ?candidates () =
    {
      name =
        (match candidates with
        | Some Mtree.Dcdm.Least_cost_only -> "DCDM/lc"
        | Some Mtree.Dcdm.Shortest_delay_only -> "DCDM/sl"
        | _ -> "DCDM");
      build =
        (fun apsp ~root ~members ~bound ->
          Mtree.Dcdm.build ?candidates apsp ~root ~bound ~members);
    }
  in
  let kmb =
    {
      name = "KMB";
      build =
        (fun apsp ~root ~members ~bound:_ -> Mtree.Kmb.build apsp ~root ~members);
    }
  in
  let spt =
    {
      name = "SPT";
      build =
        (fun apsp ~root ~members ~bound:_ -> Mtree.Spt.build apsp ~root ~members);
    }
  in
  if ablate then
    [
      dcdm ();
      dcdm ~candidates:Mtree.Dcdm.Least_cost_only ();
      dcdm ~candidates:Mtree.Dcdm.Shortest_delay_only ();
      kmb;
      spt;
    ]
  else [ dcdm (); kmb; spt ]

let fig7 ~seeds ~ablate () =
  section "Fig 7 — multicast tree quality (100-node Waxman, alpha=0.25, beta=0.2)";
  pr "averaged over %d seeds; members joined in random order\n" seeds;
  let algos = fig7_algos ~ablate in
  List.iter
    (fun bound ->
      let columns =
        T.column ~align:T.Left "group size"
        :: List.map (fun a -> T.column a.name) algos
      in
      let delay_tab = T.create columns in
      let cost_tab = T.create columns in
      List.iter
        (fun size ->
          let sums_d = Array.make (List.length algos) 0.0 in
          let sums_c = Array.make (List.length algos) 0.0 in
          for seed = 1 to seeds do
            let spec = Topology.Waxman.generate ~seed ~n:100 () in
            let apsp = Netgraph.Apsp.compute spec.Topology.Spec.graph in
            let root = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
            let rng = Scmp_util.Prng.create (seed * 7919) in
            let members =
              Scmp_util.Prng.sample rng size 100
              |> List.filter (fun x -> x <> root)
            in
            List.iteri
              (fun i a ->
                let tree = a.build apsp ~root ~members ~bound in
                sums_d.(i) <- sums_d.(i) +. Mtree.Eval.tree_delay tree;
                sums_c.(i) <- sums_c.(i) +. Mtree.Eval.tree_cost tree)
              algos
          done;
          let avg s = s /. float_of_int seeds in
          T.add_float_row delay_tab ~decimals:0 (string_of_int size)
            (Array.to_list (Array.map avg sums_d));
          T.add_float_row cost_tab ~decimals:0 (string_of_int size)
            (Array.to_list (Array.map avg sums_c)))
        fig7_group_sizes;
      let level = Mtree.Bound.to_string bound in
      print_table ~title:(Printf.sprintf "Fig 7 tree delay, %s constraint" level)
        delay_tab;
      print_table ~title:(Printf.sprintf "Fig 7 tree cost, %s constraint" level)
        cost_tab)
    Mtree.Bound.all_levels


(* ------------------------------------------------------------------ *)
(* Ablation: BRANCH packets vs always-full-TREE distribution (§III.E's
   "if the change is small, using a TREE packet containing the whole
   tree structure is too expensive"). *)

let branch_ablation ~seeds () =
  section "ablation — BRANCH vs full-TREE distribution (SCMP protocol overhead)";
  let tab =
    T.create
      [
        T.column ~align:T.Left "group size";
        T.column "BRANCH+TREE";
        T.column "always TREE";
        T.column "saving";
      ]
  in
  List.iter
    (fun size ->
      let overhead distribution =
        let acc = Scmp_util.Stats.create () in
        for seed = 1 to seeds do
          let spec = make_spec Random_deg3 seed in
          let g = spec.Topology.Spec.graph in
          let n = Netgraph.Graph.node_count g in
          let apsp = Netgraph.Apsp.compute g in
          let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
          let rng = Scmp_util.Prng.create ((seed * 499) + size) in
          let members =
            Scmp_util.Prng.sample rng (min size (n - 1)) n
            |> List.filter (fun x -> x <> center)
          in
          let source = List.hd members in
          let sc =
            Protocols.Runner.make ~scmp_distribution:distribution ~spec ~center
              ~source ~members ()
          in
          let r =
            Protocols.Runner.run (Protocols.Driver.find_exn "scmp") sc
          in
          Scmp_util.Stats.add acc r.Protocols.Runner.protocol_overhead
        done;
        Scmp_util.Stats.mean acc
      in
      let incr = overhead Protocols.Scmp_proto.Incremental in
      let full = overhead Protocols.Scmp_proto.Always_full_tree in
      T.add_row tab
        [
          string_of_int size;
          Printf.sprintf "%.0f" incr;
          Printf.sprintf "%.0f" full;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (incr /. full)));
        ])
    [ 8; 16; 24; 32; 40 ];
  print_table ~title:"random 50-node topology (avg degree 3)" tab


let workloads =
  [
    {
      Workload.name = "fig7";
      doc = "tree delay/cost vs group size (DCDM vs KMB vs SPT)";
      run = (fun c -> fig7 ~seeds:(if c.Workload.full then 10 else 3) ~ablate:c.ablate ());
    };
    {
      Workload.name = "branch";
      doc = "branch-candidate ablation";
      run = (fun c -> branch_ablation ~seeds:(if c.Workload.full then 10 else 2) ());
    };
  ]
