(* The workload registry: every benchmark is a named entry taking the
   shared run context, so the CLI dispatch, the usage text and the
   "all" composite are derived from one list (assembled explicitly in
   Main from the per-module workload lists). *)

type ctx = {
  full : bool;  (** Paper-scale seed counts instead of the smoke quota. *)
  ablate : bool;  (** Include the candidate-set ablation in fig7. *)
  jobs : int;  (** Worker domains for the parallel benches. *)
  json : string option;  (** Write micro/e2e results as scmp-report/1. *)
}

type t = {
  name : string;
  doc : string;
  run : ctx -> unit;
}
