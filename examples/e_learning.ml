(* E-learning: a lecture with student churn (one of the paper's §I
   motivating applications).

   An instructor streams one packet per second for ten minutes while
   students drop in and out of the session (Poisson arrivals,
   exponential attendance spans). The dynamic shared tree follows the
   membership; at the end the m-router's accounting shows the session
   history.

   Run with:  dune exec examples/e_learning.exe *)

let () =
  let spec = Scmp.Arpanet.generate ~seed:12 in
  let d = Scmp.Domain.create ~spec () in
  let n = Scmp.Graph.node_count spec.Scmp.Topology_spec.graph in
  let instructor = 47 (* MIT *) in
  let group = Result.get_ok (Scmp.Domain.create_group d) in
  Printf.printf "lecture group 0x%X on the ARPANET; instructor at %s\n" group
    Scmp.Arpanet.site_names.(instructor);

  (* the instructor is in the session from the start *)
  Scmp.Domain.join d ~group instructor;
  Scmp.Domain.run d;

  (* students churn: one arrival every ~20 s on average, staying ~3
     minutes; the pool is every other site *)
  let candidates =
    List.filter (fun x -> x <> instructor && x <> Scmp.Domain.mrouter d)
      (List.init n Fun.id)
  in
  let churn =
    Scmp.Churn.start (Scmp.Domain.engine d)
      ~rng:(Scmp.Prng.create 2026)
      ~candidates
      ~join:(fun x -> Scmp.Domain.join d ~group x)
      ~leave:(fun x -> Scmp.Domain.leave d ~group x)
      ~mean_interarrival:20.0 ~mean_holding:180.0 ~horizon:600.0
  in

  (* the stream: 1 packet per second for 10 minutes *)
  for k = 0 to 599 do
    Scmp.Engine.schedule_at (Scmp.Domain.engine d)
      ~time:(1.0 +. float_of_int k)
      (fun () -> Scmp.Domain.send d ~group ~src:instructor)
  done;
  Scmp.Domain.run d;

  Printf.printf "students over the session: %d joined, %d left, %d still on\n"
    (Scmp.Churn.joins churn) (Scmp.Churn.leaves churn)
    (List.length (Scmp.Churn.current_members churn));
  Printf.printf "deliveries %d, duplicates %d, max latency %.4f s\n"
    (Scmp.Domain.deliveries d) (Scmp.Domain.duplicates d)
    (Scmp.Domain.max_delay d);
  Printf.printf "data overhead %.0f, protocol overhead %.0f\n"
    (Scmp.Domain.data_overhead d) (Scmp.Domain.protocol_overhead d);

  (* the m-router's accounting database recorded the whole session *)
  let svc = Scmp.Domain.service d in
  Printf.printf "m-router accounting: %d membership joins, %d data packets\n"
    (Scmp.Service.join_count svc ~group)
    (Scmp.Service.data_count svc ~group);
  match Scmp.Domain.tree d ~group with
  | Some t ->
    Printf.printf "final tree: %d routers for %d members (cost %.0f)\n"
      (Scmp.Tree.size t) (Scmp.Tree.member_count t) (Scmp.Tree_eval.tree_cost t)
  | None -> print_endline "no tree left"
