(* Hot-standby m-router failover (the paper's concluding remark 4):
   "there is a secondary m-router concurrently running with the primary
   m-router. When the primary m-router fails, the secondary m-router
   will take over the job automatically."

   A video stream runs while the primary m-router dies; the standby
   detects the silence through heartbeats, rebuilds the tree rooted at
   itself and the stream continues.

   Run with:  dune exec examples/failover_demo.exe *)

let () =
  let spec = Scmp.Waxman.generate ~seed:77 ~n:40 () in
  let apsp = Scmp.Apsp.compute spec.Scmp.Topology_spec.graph in
  let primary = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let standby = Scmp.Placement.pick apsp Scmp.Placement.Max_degree in
  let standby = if standby = primary then (primary + 1) mod 40 else standby in
  let d = Scmp.Domain.create ~spec ~mrouter:primary ~standby () in
  Printf.printf "primary m-router: node %d, hot standby: node %d\n" primary standby;

  let group = Result.get_ok (Scmp.Domain.create_group d) in
  let members =
    List.filter (fun x -> x <> primary && x <> standby) [ 4; 12; 19; 27; 33 ]
  in
  List.iter (fun r -> Scmp.Domain.join d ~group r) members;
  Scmp.Domain.run d;
  let tree = Option.get (Scmp.Domain.tree d ~group) in
  Printf.printf "tree before failure: rooted at %d, %d routers, cost %.0f\n"
    (Scmp.Tree.root tree) (Scmp.Tree.size tree) (Scmp.Tree_eval.tree_cost tree);

  (* stream a few packets through the healthy domain *)
  let src = List.hd members in
  for _ = 1 to 5 do
    Scmp.Domain.send d ~group ~src
  done;
  Scmp.Domain.run d;
  Printf.printf "before failure: %d deliveries\n" (Scmp.Domain.deliveries d);

  (* kill the primary; heartbeat silence triggers the takeover *)
  Scmp.Domain.fail_mrouter d;
  Scmp.Domain.run d;
  Printf.printf "primary failed; standby took over: %b (m-router now %d)\n"
    (Scmp.Domain.standby_took_over d)
    (Scmp.Domain.mrouter d);
  let tree = Option.get (Scmp.Domain.tree d ~group) in
  Printf.printf "tree after takeover: rooted at %d, %d routers, cost %.0f\n"
    (Scmp.Tree.root tree) (Scmp.Tree.size tree) (Scmp.Tree_eval.tree_cost tree);

  (* the stream continues on the rebuilt tree *)
  for _ = 1 to 5 do
    Scmp.Domain.send d ~group ~src
  done;
  Scmp.Domain.run d;
  Printf.printf "after recovery: %d deliveries (duplicates %d)\n"
    (Scmp.Domain.deliveries d) (Scmp.Domain.duplicates d);

  (* a newcomer joins the post-failover domain *)
  Scmp.Domain.join d ~group 8;
  Scmp.Domain.run d;
  Printf.printf "new member joined via the standby; members now [%s]\n"
    (String.concat "; "
       (List.map string_of_int (Scmp.Domain.members d ~group)))
