(* Many-to-many: an audio/video conference (the paper's motivating
   workload for the m-router's CCN, §II.B).

   Several participants both send and receive in one group. All the
   sources' flows are merged by the m-router's sandwich fabric onto the
   single shared tree; participants churn (join late, leave early) and
   the tree follows.

   Run with:  dune exec examples/video_conference.exe *)

let () =
  let spec = Scmp.Waxman.generate ~seed:7 ~n:40 () in
  let d = Scmp.Domain.create ~spec ~fabric_ports:32 () in
  let mrouter = Scmp.Domain.mrouter d in
  Printf.printf "conference domain: 40 routers, m-router at %d\n" mrouter;

  let group = Result.get_ok (Scmp.Domain.create_group d) in

  (* Five conference sites; each is a member (receives) and a speaker
     (sends). They join over the first simulated second. *)
  let sites = [ 2; 9; 16; 23; 31 ] in
  List.iteri
    (fun i site ->
      Scmp.Engine.schedule_at (Scmp.Domain.engine d)
        ~time:(0.2 *. float_of_int i)
        (fun () -> Scmp.Domain.join d ~group site))
    sites;
  Scmp.Domain.run d;

  let tree = Option.get (Scmp.Domain.tree d ~group) in
  Printf.printf "shared tree after joins: %d routers, %d members, cost %.0f\n"
    (Scmp.Tree.size tree)
    (Scmp.Tree.member_count tree)
    (Scmp.Tree_eval.tree_cost tree);

  (* A round-robin of speakers: 10 rounds, every site sends one
     packet per round (think: one video frame burst each). *)
  for round = 0 to 9 do
    List.iteri
      (fun i site ->
        Scmp.Engine.schedule_at (Scmp.Domain.engine d)
          ~time:(2.0 +. (0.1 *. float_of_int ((round * 5) + i)))
          (fun () -> Scmp.Domain.send d ~group ~src:site))
      sites
  done;
  Scmp.Domain.run d;

  (* The fabric merged five sources into the group's single output
     port; show the plan. *)
  let plan = Scmp.Sandwich.plan (Scmp.Domain.fabric d) in
  let merge = List.assoc group plan.Scmp.Sandwich.merges in
  Printf.printf
    "fabric: %d sources merged through a %d-node CCN tree to output port %d\n"
    (List.length (Scmp.Sandwich.sources (Scmp.Domain.fabric d) group))
    (List.length merge)
    (Scmp.Sandwich.output_port (Scmp.Domain.fabric d) group);
  (match Scmp.Domain.fabric_check d with
  | Ok () -> print_endline "fabric self-check: ok"
  | Error e -> Printf.printf "fabric self-check FAILED: %s\n" e);

  Printf.printf
    "conference traffic: %d deliveries (each packet reaches the other 4 sites), \
     %d duplicates, max latency %.4f s\n"
    (Scmp.Domain.deliveries d)
    (Scmp.Domain.duplicates d)
    (Scmp.Domain.max_delay d);

  (* Two sites hang up; the tree is pruned (§III.C) and the remaining
     speakers keep talking. *)
  Scmp.Domain.leave d ~group 2;
  Scmp.Domain.leave d ~group 31;
  Scmp.Domain.run d;
  let tree = Option.get (Scmp.Domain.tree d ~group) in
  Printf.printf "after two departures: tree has %d routers, %d members\n"
    (Scmp.Tree.size tree)
    (Scmp.Tree.member_count tree);

  List.iter (fun site -> Scmp.Domain.send d ~group ~src:site) [ 9; 16; 23 ];
  Scmp.Domain.run d;
  Printf.printf "final deliveries %d, duplicates %d\n"
    (Scmp.Domain.deliveries d)
    (Scmp.Domain.duplicates d);

  (* The m-router's accounting database saw it all (§II.C). *)
  let svc = Scmp.Domain.service d in
  Printf.printf
    "m-router accounting: %d joins, %d data packets logged, current members [%s]\n"
    (Scmp.Service.join_count svc ~group)
    (Scmp.Service.data_count svc ~group)
    (String.concat "; "
       (List.map string_of_int (Scmp.Service.current_members svc ~group)))
