(* Every registered protocol, one scenario: a miniature of the paper's
   network-wide evaluation (Figs 8 and 9), plus PIM-SM from the
   driver registry.

   Run with:  dune exec examples/protocol_faceoff.exe *)

let () =
  let spec = Scmp.Flat_random.generate ~seed:4 ~n:50 ~avg_degree:3.0 in
  let apsp = Scmp.Apsp.compute spec.Scmp.Topology_spec.graph in
  let center = Scmp.Placement.pick apsp Scmp.Placement.Min_avg_delay in
  let rng = Scmp.Prng.create 42 in
  let members =
    Scmp.Prng.sample rng 20 50 |> List.filter (fun x -> x <> center)
  in
  let source = List.hd members in
  let scenario = Scmp.Runner.make ~spec ~center ~source ~members () in
  Printf.printf
    "50-node random topology (mean degree %.1f), %d members, source %d, \
     m-router/core %d\n30 packets at 1/s\n\n"
    (Scmp.Graph.mean_degree spec.graph)
    (List.length members) source center;
  Printf.printf "%-7s %14s %16s %10s %11s\n" "proto" "data overhead"
    "protocol overhead" "max delay" "deliveries";
  List.iter
    (fun d ->
      let r = Scmp.Runner.run d scenario in
      Printf.printf "%-7s %14.0f %16.0f %9.4fs %6d/%d dup=%d\n"
        (Scmp.Driver.display d)
        r.Scmp.Runner.data_overhead r.protocol_overhead r.max_delay r.deliveries
        (r.packets_sent * (List.length members - 1))
        r.duplicates)
    (Scmp.Driver.all ());
  print_newline ();
  print_endline
    "expected shape (paper Figs 8-9): SCMP lowest data overhead; DVMRP much";
  print_endline
    "higher data overhead; MOSPF steepest protocol overhead; CBT slightly";
  print_endline
    "below SCMP on protocol overhead; SPT protocols (DVMRP/MOSPF) fastest."
