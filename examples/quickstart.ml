(* Quickstart: bring up an SCMP domain on a random topology, create a
   group, join a few routers, multicast a packet, inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A topology. Any generator works; here a 30-node Waxman graph
     (the paper's random-network model). *)
  let spec = Scmp.Waxman.generate ~seed:2024 ~n:30 () in
  Printf.printf "topology: %s, %d nodes, %d links, mean degree %.2f\n"
    spec.Scmp.Topology_spec.name
    (Scmp.Graph.node_count spec.graph)
    (Scmp.Graph.link_count spec.graph)
    (Scmp.Graph.mean_degree spec.graph);

  (* 2. The domain. The m-router is placed automatically (placement
     rule 1: minimum average unicast delay). *)
  let d = Scmp.Domain.create ~spec () in
  Printf.printf "m-router placed at node %d\n" (Scmp.Domain.mrouter d);

  (* 3. A multicast group: the m-router allocates the address and an
     output port on its switching fabric. *)
  let group =
    match Scmp.Domain.create_group d with
    | Ok g -> g
    | Error e -> failwith e
  in
  Printf.printf "group address: 0x%X\n" group;

  (* 4. Hosts join through IGMP on their routers' subnets. Joins are
     simulation events: run the engine to let JOIN requests reach the
     m-router and BRANCH packets build the tree. *)
  List.iter (fun r -> Scmp.Domain.join d ~group r) [ 3; 11; 17; 24; 28 ];
  Scmp.Domain.run d;

  (match Scmp.Domain.tree d ~group with
  | Some tree ->
    Printf.printf "multicast tree: %d routers, cost %.0f, tree delay %.4f s\n"
      (Scmp.Tree.size tree)
      (Scmp.Tree_eval.tree_cost tree)
      (Scmp.Tree_eval.tree_delay tree)
  | None -> print_endline "no tree yet");

  (* 5. Multicast. Node 3 is a member (on-tree source); node 7 is not
     (its packet is encapsulated to the m-router first, §III.F). *)
  Scmp.Domain.send d ~group ~src:3;
  Scmp.Domain.send d ~group ~src:7;
  Scmp.Domain.run d;

  Printf.printf "deliveries: %d (duplicates %d), max end-to-end delay %.4f s\n"
    (Scmp.Domain.deliveries d)
    (Scmp.Domain.duplicates d)
    (Scmp.Domain.max_delay d);
  Printf.printf "data overhead %.0f, protocol overhead %.0f (link-cost units)\n"
    (Scmp.Domain.data_overhead d)
    (Scmp.Domain.protocol_overhead d);

  (* 6. The m-router's switching fabric is consistent with the group
     state (PN/CCN/DN sandwich, §II.B). *)
  match Scmp.Domain.fabric_check d with
  | Ok () -> print_endline "fabric self-check: ok"
  | Error e -> Printf.printf "fabric self-check FAILED: %s\n" e
