(* Multiple m-routers per domain (§II.A: "An ISP may own more than one
   m-routers in the Internet for serving its customers in different
   geographic regions").

   A continental ISP runs a west-coast and an east-coast m-router on
   the ARPANET. Each multicast group is homed on the m-router nearest
   its membership; trees of different groups root at different
   m-routers, spreading load and shortening control paths.

   Run with:  dune exec examples/regional_isp.exe *)

let () =
  let spec = Scmp.Arpanet.generate ~seed:9 in
  let g0 = spec.Scmp.Topology_spec.graph in

  (* two regional anchors: UTAH in the west, DC in the east *)
  let west = 12 and east = 39 in
  Printf.printf "m-routers: %s (west, node %d) and %s (east, node %d)\n"
    Scmp.Arpanet.site_names.(west) west Scmp.Arpanet.site_names.(east) east;

  let g =
    Scmp.Graph.map_links g0 ~f:(fun l ->
        (l.Scmp.Graph.delay *. 3e-6, l.Scmp.Graph.cost))
  in
  let engine = Scmp.Engine.create () in
  let net = Scmp.Netsim.create engine g ~classify:Scmp.Message.classify in
  let delivery = Scmp.Delivery.create engine in

  (* group 101: west-coast sites; group 102: east-coast sites *)
  let west_group = 101 and east_group = 102 in
  let west_members = [ 0; 2; 5; 7; 15 ] in
  let east_members = [ 36; 42; 44; 46; 33 ] in
  let assign grp = if grp = west_group then west else east in
  let m = Scmp.Multi_mrouter.create ~delivery ~assign net ~mrouters:[ west; east ] () in

  List.iter (fun r -> Scmp.Multi_mrouter.host_join m ~group:west_group r) west_members;
  List.iter (fun r -> Scmp.Multi_mrouter.host_join m ~group:east_group r) east_members;
  Scmp.Engine.run engine;

  List.iter
    (fun (name, grp) ->
      match Scmp.Multi_mrouter.tree m ~group:grp with
      | Some t ->
        Printf.printf "%s group: rooted at %s, %d routers, cost %.0f\n" name
          Scmp.Arpanet.site_names.(Scmp.Tree.root t)
          (Scmp.Tree.size t) (Scmp.Tree_eval.tree_cost t)
      | None -> Printf.printf "%s group: no tree\n" name)
    [ ("west", west_group); ("east", east_group) ];

  (* regional traffic stays regional: a west source multicasts *)
  let seq = ref 0 in
  let send grp src members =
    let expected = List.filter (fun x -> x <> src) members in
    Scmp.Delivery.expect delivery ~seq:!seq ~members:expected
      ~sent_at:(Scmp.Engine.now engine);
    Scmp.Multi_mrouter.send_data m ~group:grp ~src ~seq:!seq;
    incr seq
  in
  for _ = 1 to 5 do
    send west_group 0 west_members;
    send east_group 46 east_members
  done;
  Scmp.Engine.run engine;
  Printf.printf "deliveries %d (expected %d), duplicates %d\n"
    (Scmp.Delivery.deliveries delivery)
    (5 * 2 * 4)
    (Scmp.Delivery.duplicates delivery);
  (match Scmp.Multi_mrouter.network_tree_consistent m ~group:west_group with
  | Ok () -> print_endline "west network state consistent"
  | Error e -> Printf.printf "west INCONSISTENT: %s\n" e);
  match Scmp.Multi_mrouter.network_tree_consistent m ~group:east_group with
  | Ok () -> print_endline "east network state consistent"
  | Error e -> Printf.printf "east INCONSISTENT: %s\n" e
