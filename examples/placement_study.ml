(* Where should the ISP put its m-router? (§IV.A's placement rules.)

   Scores each placement heuristic — and a few random placements — by
   the mean DCDM tree cost over many random member sets, on a Waxman
   topology.

   Run with:  dune exec examples/placement_study.exe *)

let () =
  let spec = Scmp.Waxman.generate ~seed:99 ~n:60 () in
  let apsp = Scmp.Apsp.compute spec.Scmp.Topology_spec.graph in
  let score candidate =
    Scmp.Placement.evaluate apsp ~candidate ~bound:Scmp.Bound.Moderate
      ~group_size:15 ~trials:40 ~seed:1
  in
  Printf.printf "placement study: 60-node Waxman, groups of 15, 40 trials each\n\n";
  Printf.printf "%-22s %-6s %s\n" "rule" "node" "mean DCDM tree cost";
  List.iter
    (fun rule ->
      let node = Scmp.Placement.pick apsp rule in
      Printf.printf "%-22s %-6d %.0f\n" (Scmp.Placement.rule_name rule) node
        (score node))
    Scmp.Placement.all_rules;
  let rng = Scmp.Prng.create 123 in
  for _ = 1 to 4 do
    let node = Scmp.Prng.int rng 60 in
    Printf.printf "%-22s %-6d %.0f\n" "random" node (score node)
  done
