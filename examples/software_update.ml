(* One-to-many: software upgrade distribution over the ARPANET
   backbone (another §I motivating workload: "software upgrading and
   distributed database replication").

   A distribution server behind one router pushes a multi-packet update
   to a flash crowd of subscribers. We compare the multicast cost with
   what repeated unicast would have paid, which is the bandwidth
   argument that motivates multicast in the first place.

   Run with:  dune exec examples/software_update.exe *)

let () =
  let spec = Scmp.Arpanet.generate ~seed:5 in
  let n = Scmp.Graph.node_count spec.Scmp.Topology_spec.graph in
  let d = Scmp.Domain.create ~spec () in
  let server = 0 (* SRI *) in
  Printf.printf "ARPANET: %d sites, m-router at %s (node %d)\n" n
    Scmp.Arpanet.site_names.(Scmp.Domain.mrouter d)
    (Scmp.Domain.mrouter d);

  let group = Result.get_ok (Scmp.Domain.create_group d) in

  (* Flash crowd: every other site subscribes within half a second. *)
  let subscribers =
    List.filter (fun x -> x <> server && x mod 2 = 1) (List.init n Fun.id)
  in
  List.iteri
    (fun i s ->
      Scmp.Engine.schedule_at (Scmp.Domain.engine d)
        ~time:(0.05 *. float_of_int i)
        (fun () -> Scmp.Domain.join d ~group s))
    subscribers;
  Scmp.Domain.run d;
  Printf.printf "%d sites subscribed: [%s]\n"
    (List.length subscribers)
    (String.concat "; " (List.map (fun s -> Scmp.Arpanet.site_names.(s)) subscribers));

  (* The update: 20 packets from the server (an off-tree source — its
     traffic is encapsulated to the m-router, §III.F). *)
  let packets = 20 in
  for k = 0 to packets - 1 do
    Scmp.Engine.schedule_at (Scmp.Domain.engine d)
      ~time:(2.0 +. (0.05 *. float_of_int k))
      (fun () -> Scmp.Domain.send d ~group ~src:server)
  done;
  Scmp.Domain.run d;

  let multicast_cost = Scmp.Domain.data_overhead d in
  Printf.printf "update delivered: %d deliveries, %d duplicates, max delay %.4f s\n"
    (Scmp.Domain.deliveries d)
    (Scmp.Domain.duplicates d)
    (Scmp.Domain.max_delay d);

  (* What unicast would have cost: per packet, the sum over subscribers
     of the least-cost path from the server. *)
  let apsp = Scmp.Apsp.compute spec.graph in
  let unicast_per_packet =
    List.fold_left
      (fun acc s -> acc +. Scmp.Apsp.cost apsp server s)
      0.0 subscribers
  in
  let unicast_cost = unicast_per_packet *. float_of_int packets in
  Printf.printf
    "data cost: multicast %.0f vs unicast %.0f (%.1fx saving) in link-cost units\n"
    multicast_cost unicast_cost
    (unicast_cost /. multicast_cost);

  (* Tree quality versus the theoretical baselines on the same member
     set (Fig 7's comparison, in miniature). Rebuild the DCDM tree on
     the unscaled topology so all three share delay units. *)
  let root = Scmp.Domain.mrouter d in
  let dcdm =
    Scmp.Dcdm.build apsp ~root ~bound:Scmp.Bound.Tightest ~members:subscribers
  in
  let kmb = Scmp.Kmb.build apsp ~root ~members:subscribers in
  let spt = Scmp.Spt.build apsp ~root ~members:subscribers in
  Printf.printf
    "tree cost: DCDM %.0f | KMB (cost-optimal heuristic) %.0f | SPT %.0f\n"
    (Scmp.Tree_eval.tree_cost dcdm)
    (Scmp.Tree_eval.tree_cost kmb)
    (Scmp.Tree_eval.tree_cost spt);
  Printf.printf "tree delay: DCDM %.0f | KMB %.0f | SPT (delay-optimal) %.0f\n"
    (Scmp.Tree_eval.tree_delay dcdm)
    (Scmp.Tree_eval.tree_delay kmb)
    (Scmp.Tree_eval.tree_delay spt)
